//! Scheduled fault plans: scripted outages, brownouts and loss episodes.
//!
//! The paper measures a *healthy* content-distribution platform; this
//! module supplies the machinery to measure an unhealthy one. A
//! [`FaultPlan`] is a seed-independent, fully scripted schedule of fault
//! windows over the entities of a service scenario — front-end servers,
//! back-end sites and individual paths — expressed in **scenario indices**
//! (the position of an FE or BE in the placement lists), not simulator
//! node ids. The service layer translates the plan into packet-level
//! mechanics (`tcpsim::LinkFault`, connection aborts) and control-plane
//! behaviour (health-aware DNS, failover) when the simulation is built.
//!
//! All windows are half-open `[start, end)`. An empty plan is the
//! default and must leave every simulation trajectory byte-identical to
//! a build without the fault subsystem at all.

use simcore::time::SimTime;

/// Parameters of a Gilbert–Elliott burst-loss episode.
///
/// The chain advances once per matching packet: in the *good* state a
/// packet may flip the chain to *bad* with probability `p_enter`; in the
/// *bad* state it may flip back with probability `p_exit`; packets
/// observed in the bad state are dropped with probability `bad_loss`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstLossParams {
    /// Probability of entering the bad (bursty) state, per packet.
    pub p_enter: f64,
    /// Probability of leaving the bad state, per packet.
    pub p_exit: f64,
    /// Drop probability while in the bad state.
    pub bad_loss: f64,
}

impl BurstLossParams {
    /// A moderately bursty episode: short bad runs with heavy in-burst
    /// loss — the classic access-network interference signature.
    pub fn moderate() -> BurstLossParams {
        BurstLossParams {
            p_enter: 0.02,
            p_exit: 0.25,
            bad_loss: 0.5,
        }
    }
}

/// What fails during a [`FaultWindow`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// A front-end server is completely unreachable: its node blackholes
    /// all traffic and health-aware DNS steers new queries away once the
    /// previous answer's TTL expires.
    FeOutage {
        /// Scenario index of the front-end.
        fe: usize,
    },
    /// A front-end is degraded but alive: request processing is slowed by
    /// `slowdown` (> 1.0). DNS keeps mapping clients to it.
    FeBrownout {
        /// Scenario index of the front-end.
        fe: usize,
        /// Multiplier applied to FE processing delays (must be >= 1.0).
        slowdown: f64,
    },
    /// A back-end site is down: its node blackholes all traffic, so
    /// front-ends fail over to their next-nearest live site.
    BeOutage {
        /// Scenario index of the back-end site.
        be: usize,
    },
    /// The persistent FE↔BE connections between one front-end and one
    /// back-end are dropped at the window start (the window length is
    /// irrelevant): pooled connections are aborted and the next fetch
    /// pays a cold reconnect.
    ConnDrop {
        /// Scenario index of the front-end.
        fe: usize,
        /// Scenario index of the back-end site.
        be: usize,
    },
    /// A Gilbert–Elliott burst-loss episode on one client's access path
    /// to a front-end.
    ClientBurstLoss {
        /// Scenario index of the client (vantage point).
        client: usize,
        /// Scenario index of the front-end.
        fe: usize,
        /// Episode parameters.
        params: BurstLossParams,
    },
    /// A Gilbert–Elliott burst-loss episode on a front-end's path to a
    /// back-end site.
    FeBeBurstLoss {
        /// Scenario index of the front-end.
        fe: usize,
        /// Scenario index of the back-end site.
        be: usize,
        /// Episode parameters.
        params: BurstLossParams,
    },
}

/// One scheduled fault: a [`FaultKind`] active over `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultWindow {
    /// What fails.
    pub kind: FaultKind,
    /// When the fault begins (inclusive).
    pub start: SimTime,
    /// When the fault ends (exclusive).
    pub end: SimTime,
}

impl FaultWindow {
    /// True if the window is active at `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// A scripted schedule of fault windows for one scenario run.
///
/// The plan is deliberately *not* randomized: reproducing a failure
/// episode exactly — same outage, same second — is what makes the
/// recovery behaviour assertable in tests and experiments. Randomness
/// only enters through burst-loss episodes, which draw from the
/// simulator's dedicated fault RNG stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan: no faults, byte-identical trajectories.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// All scheduled windows, in insertion order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    fn push(mut self, kind: FaultKind, start: SimTime, end: SimTime) -> FaultPlan {
        assert!(start <= end, "fault window must not end before it starts");
        self.windows.push(FaultWindow { kind, start, end });
        self
    }

    /// Schedules a complete outage of front-end `fe` over `[start, end)`.
    pub fn fe_outage(self, fe: usize, start: SimTime, end: SimTime) -> FaultPlan {
        self.push(FaultKind::FeOutage { fe }, start, end)
    }

    /// Schedules a brownout of front-end `fe`: processing slowed by
    /// `slowdown` (>= 1.0) over `[start, end)`.
    pub fn fe_brownout(self, fe: usize, start: SimTime, end: SimTime, slowdown: f64) -> FaultPlan {
        assert!(slowdown >= 1.0, "a brownout slows processing down");
        self.push(FaultKind::FeBrownout { fe, slowdown }, start, end)
    }

    /// Schedules a complete outage of back-end site `be` over
    /// `[start, end)`.
    pub fn be_outage(self, be: usize, start: SimTime, end: SimTime) -> FaultPlan {
        self.push(FaultKind::BeOutage { be }, start, end)
    }

    /// Drops the persistent connections between front-end `fe` and
    /// back-end `be` at time `at`.
    pub fn conn_drop(self, fe: usize, be: usize, at: SimTime) -> FaultPlan {
        self.push(FaultKind::ConnDrop { fe, be }, at, at)
    }

    /// Schedules a burst-loss episode on client `client`'s path to
    /// front-end `fe` over `[start, end)`.
    pub fn client_burst_loss(
        self,
        client: usize,
        fe: usize,
        start: SimTime,
        end: SimTime,
        params: BurstLossParams,
    ) -> FaultPlan {
        self.push(
            FaultKind::ClientBurstLoss { client, fe, params },
            start,
            end,
        )
    }

    /// Schedules a burst-loss episode on front-end `fe`'s path to
    /// back-end site `be` over `[start, end)`.
    pub fn fe_be_burst_loss(
        self,
        fe: usize,
        be: usize,
        start: SimTime,
        end: SimTime,
        params: BurstLossParams,
    ) -> FaultPlan {
        self.push(FaultKind::FeBeBurstLoss { fe, be, params }, start, end)
    }

    /// True if front-end `fe` is in a full-outage window at `t`.
    pub fn fe_down(&self, fe: usize, t: SimTime) -> bool {
        self.windows
            .iter()
            .any(|w| matches!(w.kind, FaultKind::FeOutage { fe: f } if f == fe) && w.active_at(t))
    }

    /// True if back-end site `be` is in an outage window at `t`.
    pub fn be_down(&self, be: usize, t: SimTime) -> bool {
        self.windows
            .iter()
            .any(|w| matches!(w.kind, FaultKind::BeOutage { be: b } if b == be) && w.active_at(t))
    }

    /// Combined processing slowdown of front-end `fe` at `t`: the product
    /// of all active brownout windows (1.0 when healthy).
    pub fn fe_slowdown(&self, fe: usize, t: SimTime) -> f64 {
        self.windows
            .iter()
            .filter_map(|w| match w.kind {
                FaultKind::FeBrownout { fe: f, slowdown } if f == fe && w.active_at(t) => {
                    Some(slowdown)
                }
                _ => None,
            })
            .product::<f64>()
            .max(1.0)
    }

    /// True if *any* window (of any kind) ever targets front-end `fe` with
    /// a full outage — used to decide whether DNS must bother with health
    /// checks at all.
    pub fn has_fe_outages(&self) -> bool {
        self.windows
            .iter()
            .any(|w| matches!(w.kind, FaultKind::FeOutage { .. }))
    }

    /// True if any window ever targets a back-end site with an outage.
    pub fn has_be_outages(&self) -> bool {
        self.windows
            .iter()
            .any(|w| matches!(w.kind, FaultKind::BeOutage { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn empty_plan_reports_everything_healthy() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(!plan.fe_down(0, t(10)));
        assert!(!plan.be_down(0, t(10)));
        assert_eq!(plan.fe_slowdown(0, t(10)), 1.0);
        assert!(!plan.has_fe_outages());
        assert!(!plan.has_be_outages());
    }

    #[test]
    fn windows_are_half_open() {
        let plan = FaultPlan::new().fe_outage(3, t(10), t(20));
        assert!(!plan.fe_down(3, t(9)));
        assert!(plan.fe_down(3, t(10)));
        assert!(plan.fe_down(3, t(19)));
        assert!(!plan.fe_down(3, t(20)));
        // A different FE is unaffected.
        assert!(!plan.fe_down(2, t(15)));
    }

    #[test]
    fn brownout_slowdowns_compose_multiplicatively() {
        let plan = FaultPlan::new()
            .fe_brownout(1, t(0), t(100), 2.0)
            .fe_brownout(1, t(50), t(100), 3.0);
        assert_eq!(plan.fe_slowdown(1, t(10)), 2.0);
        assert_eq!(plan.fe_slowdown(1, t(60)), 6.0);
        assert_eq!(plan.fe_slowdown(1, t(200)), 1.0);
        assert_eq!(plan.fe_slowdown(0, t(60)), 1.0);
    }

    #[test]
    fn outage_presence_flags() {
        let plan = FaultPlan::new().be_outage(0, t(5), t(6));
        assert!(!plan.has_fe_outages());
        assert!(plan.has_be_outages());
        let plan = plan.fe_outage(1, t(7), t(8));
        assert!(plan.has_fe_outages());
    }

    #[test]
    fn conn_drop_is_a_point_event() {
        let plan = FaultPlan::new().conn_drop(2, 1, t(30));
        let w = plan.windows()[0];
        assert_eq!(w.start, w.end);
        assert!(matches!(w.kind, FaultKind::ConnDrop { fe: 2, be: 1 }));
    }

    #[test]
    #[should_panic(expected = "must not end before")]
    fn reversed_window_panics() {
        let _ = FaultPlan::new().fe_outage(0, t(10), t(5));
    }
}
