//! # nettopo — network geography and path models
//!
//! The measurement study ran on the 2011 Internet: ~200–250 PlanetLab
//! vantage points (campus-biased), Akamai's dense edge fleet serving Bing,
//! Google's own sparser front-end POPs, and a handful of back-end data
//! centers. This crate rebuilds that world synthetically:
//!
//! * [`geo`] — coordinates and great-circle distances;
//! * [`metro`] — an embedded catalogue of world metro areas with
//!   PlanetLab-era weighting (North America / Europe heavy);
//! * [`vantage`] — PlanetLab-like vantage-point generation (clustered
//!   around university metros, mostly well-connected campus access);
//! * [`placement`] — front-end placement strategies: `dense_edge`
//!   (Akamai-like, deployed into nearly every metro and into campus
//!   networks) and `sparse_pop` (Google-like, major POPs only);
//! * [`sites`] — 2011-era back-end data-center site lists for both
//!   services (from the paper's refs \[1\] and \[2\]);
//! * [`path`] — per-path latency/jitter/loss/bandwidth models derived
//!   from geography plus a *profile* (public transit, private WAN,
//!   campus access, wireless access);
//! * [`faults`] — scripted fault schedules ([`FaultPlan`]): FE/BE
//!   outages, brownouts, persistent-connection drops and burst-loss
//!   episodes, consumed by the service layer's failure-recovery
//!   machinery.
//!
//! Everything is deterministic given a seed.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod faults;
pub mod geo;
pub mod metro;
pub mod path;
pub mod placement;
pub mod sites;
pub mod vantage;

pub use faults::{BurstLossParams, FaultKind, FaultPlan, FaultWindow};
pub use geo::GeoPoint;
pub use metro::{Metro, Region, WORLD_METROS};
pub use path::{PathModel, PathProfile};
pub use placement::FeSite;
pub use sites::BeSite;
pub use vantage::{AccessKind, Vantage};
