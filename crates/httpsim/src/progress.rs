//! Receive-side progress tracking.
//!
//! Front-ends need to know when a request has fully arrived; clients need
//! to know when the response (static + dynamic) is complete; the FE needs
//! to know when the BE's response has streamed in. [`RecvProgress`]
//! accumulates the delivered spans reported by `tcpsim` and answers those
//! questions per content class.

use tcpsim::{DeliveredSpan, Marker};

/// Per-marker byte accumulator for one connection direction.
#[derive(Clone, Debug, Default)]
pub struct RecvProgress {
    request: u64,
    stat: u64,
    dynamic: u64,
    be_query: u64,
    be_response: u64,
    error: u64,
    other: u64,
}

impl RecvProgress {
    /// Creates an empty tracker.
    pub fn new() -> RecvProgress {
        RecvProgress::default()
    }

    /// Accounts for newly delivered spans.
    pub fn absorb(&mut self, spans: &[DeliveredSpan]) {
        for s in spans {
            let b = s.len as u64;
            match s.marker {
                Marker::Request => self.request += b,
                Marker::Static => self.stat += b,
                Marker::Dynamic => self.dynamic += b,
                Marker::BeQuery => self.be_query += b,
                Marker::BeResponse => self.be_response += b,
                Marker::Error => self.error += b,
                Marker::Other => self.other += b,
            }
        }
    }

    /// Bytes received for a marker class.
    pub fn bytes(&self, marker: Marker) -> u64 {
        match marker {
            Marker::Request => self.request,
            Marker::Static => self.stat,
            Marker::Dynamic => self.dynamic,
            Marker::BeQuery => self.be_query,
            Marker::BeResponse => self.be_response,
            Marker::Error => self.error,
            Marker::Other => self.other,
        }
    }

    /// Total bytes received across all classes.
    pub fn total(&self) -> u64 {
        self.request
            + self.stat
            + self.dynamic
            + self.be_query
            + self.be_response
            + self.error
            + self.other
    }

    /// True once at least `expected` bytes of `marker` have arrived.
    pub fn complete(&self, marker: Marker, expected: u64) -> bool {
        self.bytes(marker) >= expected
    }

    /// Resets all counters (connection reuse between queries).
    pub fn reset(&mut self) {
        *self = RecvProgress::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(len: u32, marker: Marker) -> DeliveredSpan {
        DeliveredSpan {
            offset: 0,
            len,
            marker,
            content: 0,
        }
    }

    #[test]
    fn accumulates_per_marker() {
        let mut p = RecvProgress::new();
        p.absorb(&[span(100, Marker::Request), span(200, Marker::Static)]);
        p.absorb(&[span(300, Marker::Static), span(50, Marker::Dynamic)]);
        assert_eq!(p.bytes(Marker::Request), 100);
        assert_eq!(p.bytes(Marker::Static), 500);
        assert_eq!(p.bytes(Marker::Dynamic), 50);
        assert_eq!(p.total(), 650);
    }

    #[test]
    fn completion_check() {
        let mut p = RecvProgress::new();
        assert!(!p.complete(Marker::Request, 1));
        assert!(p.complete(Marker::Request, 0));
        p.absorb(&[span(400, Marker::Request)]);
        assert!(p.complete(Marker::Request, 400));
        assert!(!p.complete(Marker::Request, 401));
    }

    #[test]
    fn reset_clears_everything() {
        let mut p = RecvProgress::new();
        p.absorb(&[span(10, Marker::BeQuery), span(20, Marker::BeResponse)]);
        assert_eq!(p.total(), 30);
        p.reset();
        assert_eq!(p.total(), 0);
        assert_eq!(p.bytes(Marker::BeQuery), 0);
    }

    #[test]
    fn other_marker_tracked() {
        let mut p = RecvProgress::new();
        p.absorb(&[span(7, Marker::Other)]);
        assert_eq!(p.bytes(Marker::Other), 7);
    }
}
