//! Request and response size/identity modeling.

use tcpsim::{ConnId, End, Marker, Net};

/// Content ids below this value are reserved for static content (one per
/// service); dynamic content ids are allocated above it.
pub const CONTENT_ID_STATIC_BASE: u64 = 1_000;

/// Wire-size model of a search GET request.
///
/// `GET /search?q=<query> HTTP/1.1` plus Host, User-Agent, Accept*,
/// Cookie headers — around 300 bytes of boilerplate plus the
/// percent-encoded query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestSpec {
    /// Total request size in bytes.
    pub bytes: u64,
    /// Content identity of the request (per query, so FE→BE relays are
    /// attributable in traces).
    pub content: u64,
}

impl RequestSpec {
    /// Builds the spec for a query string of `query_chars` characters
    /// (percent-encoding inflates by ~1.2×) with content id `content`.
    pub fn for_query_len(query_chars: usize, content: u64) -> RequestSpec {
        let encoded = (query_chars as f64 * 1.2).ceil() as u64;
        RequestSpec {
            bytes: 310 + encoded,
            content,
        }
    }

    /// Sends this request on a connection (from `end`).
    pub fn send(&self, net: &mut Net, conn: ConnId, end: End) {
        net.send(conn, end, self.bytes, Marker::Request, self.content);
    }

    /// Sends this request re-marked as a BE-leg query (FE → BE).
    pub fn send_as_be_query(&self, net: &mut Net, conn: ConnId, end: End) {
        net.send(conn, end, self.bytes, Marker::BeQuery, self.content);
    }
}

/// The two-part response layout.
///
/// `static_content` is the *same id* for every response from a given
/// service — the HTTP header, HTML head, CSS and static menu bar do not
/// depend on the query. `dynamic_content` is unique per query (search
/// engines personalise; the paper's Sec. 3 experiments confirm FEs do not
/// cache results).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResponsePlan {
    /// Bytes of the static portion.
    pub static_bytes: u64,
    /// Content identity of the static portion (shared across queries).
    pub static_content: u64,
    /// Bytes of the dynamic portion.
    pub dynamic_bytes: u64,
    /// Content identity of the dynamic portion (per query).
    pub dynamic_content: u64,
}

impl ResponsePlan {
    /// Creates a plan; static content ids must be below
    /// [`CONTENT_ID_STATIC_BASE`], dynamic ids at or above it.
    pub fn new(
        static_bytes: u64,
        static_content: u64,
        dynamic_bytes: u64,
        dynamic_content: u64,
    ) -> ResponsePlan {
        assert!(
            static_content < CONTENT_ID_STATIC_BASE,
            "static content id must be < {CONTENT_ID_STATIC_BASE}"
        );
        assert!(
            dynamic_content >= CONTENT_ID_STATIC_BASE,
            "dynamic content id must be >= {CONTENT_ID_STATIC_BASE}"
        );
        assert!(static_bytes > 0 && dynamic_bytes > 0);
        ResponsePlan {
            static_bytes,
            static_content,
            dynamic_bytes,
            dynamic_content,
        }
    }

    /// Total response size.
    pub fn total_bytes(&self) -> u64 {
        self.static_bytes + self.dynamic_bytes
    }

    /// Sends the static portion (FE cache hit: delivered immediately on
    /// request arrival).
    pub fn send_static(&self, net: &mut Net, conn: ConnId, end: End) {
        net.send(
            conn,
            end,
            self.static_bytes,
            Marker::Static,
            self.static_content,
        );
    }

    /// Sends the dynamic portion (after the FE↔BE fetch completes).
    pub fn send_dynamic(&self, net: &mut Net, conn: ConnId, end: End) {
        net.send(
            conn,
            end,
            self.dynamic_bytes,
            Marker::Dynamic,
            self.dynamic_content,
        );
    }

    /// Sends the dynamic portion re-marked as a BE-leg response
    /// (BE → FE on the split connection).
    pub fn send_as_be_response(&self, net: &mut Net, conn: ConnId, end: End) {
        net.send(
            conn,
            end,
            self.dynamic_bytes,
            Marker::BeResponse,
            self.dynamic_content,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_size_scales_with_query() {
        let short = RequestSpec::for_query_len(5, 2000);
        let long = RequestSpec::for_query_len(80, 2001);
        assert!(short.bytes >= 310);
        assert!(long.bytes > short.bytes + 80);
        assert_eq!(short.content, 2000);
    }

    #[test]
    fn plan_totals() {
        let p = ResponsePlan::new(8_000, 1, 25_000, 5_000);
        assert_eq!(p.total_bytes(), 33_000);
    }

    #[test]
    #[should_panic(expected = "static content id")]
    fn static_id_range_enforced() {
        ResponsePlan::new(8_000, 5_000, 25_000, 5_000);
    }

    #[test]
    #[should_panic(expected = "dynamic content id")]
    fn dynamic_id_range_enforced() {
        ResponsePlan::new(8_000, 1, 25_000, 2);
    }
}
