//! # httpsim — HTTP/1.1 message modeling over `tcpsim`
//!
//! The measurement study operates on HTTP exchanges: a GET with a query
//! string goes up; a response whose body splits into a *static portion*
//! (HTTP header, HTML head, CSS, static menu bar — cached at the FE) and
//! a *dynamic portion* (results, ads — generated at the BE) comes down.
//!
//! The simulator does not shuttle literal bytes; it accounts for their
//! *sizes* and *identities*. This crate provides that accounting:
//!
//! * [`RequestSpec`] — wire size of a search GET for a given query
//!   string;
//! * [`ResponsePlan`] — the two-part response layout with content
//!   identities (equal ids ⇔ byte-identical content, which is how the
//!   capture pipeline detects the cross-query-static part);
//! * [`RecvProgress`] — receive-side reassembly bookkeeping: how many
//!   bytes of each part have arrived, and whether a message is complete.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod msg;
pub mod progress;

pub use msg::{RequestSpec, ResponsePlan, CONTENT_ID_STATIC_BASE};
pub use progress::RecvProgress;
