//! Campaign summary reports.
//!
//! Turns processed-query sets into the compact comparison tables the
//! figure harnesses and examples print: per-service medians and
//! variability of every paper quantity, rendered as aligned text or
//! GitHub-flavoured markdown.

use crate::runner::ProcessedQuery;
use crate::sink::QuerySink;
use stats::quantile::Summary;
use stats::streaming::SummaryAcc;

/// The summary statistics of one campaign (one service / configuration).
#[derive(Clone, Debug)]
pub struct CampaignSummary {
    /// Campaign label.
    pub label: String,
    /// Number of queries.
    pub n: usize,
    /// Distribution of measured handshake RTTs (ms).
    pub rtt: Summary,
    /// Distribution of `Tstatic` (ms).
    pub t_static: Summary,
    /// Distribution of `Tdynamic` (ms).
    pub t_dynamic: Summary,
    /// Distribution of `Tdelta` (ms).
    pub t_delta: Summary,
    /// Distribution of the overall delay (ms).
    pub overall: Summary,
    /// Distribution of ground-truth `Tproc` (ms), when available.
    pub true_proc: Option<Summary>,
}

impl CampaignSummary {
    /// Summarises a campaign. Returns `None` for empty input.
    pub fn of(label: impl Into<String>, queries: &[ProcessedQuery]) -> Option<CampaignSummary> {
        let mut acc = CampaignSummaryAcc::new(label);
        for q in queries {
            acc.push(q);
        }
        acc.finish()
    }
}

/// Streaming builder of a [`CampaignSummary`]: folds queries one at a
/// time into exact [`SummaryAcc`]s, so campaigns summarise without a
/// `Vec<ProcessedQuery>` buffer. Exact accumulators sort at finish and
/// call the same [`Summary::of`] path as the batch constructor — the
/// resulting summary is bit-identical to
/// [`CampaignSummary::of`] on the same query sequence.
#[derive(Clone, Debug)]
pub struct CampaignSummaryAcc {
    label: String,
    n: usize,
    rtt: SummaryAcc,
    t_static: SummaryAcc,
    t_dynamic: SummaryAcc,
    t_delta: SummaryAcc,
    overall: SummaryAcc,
    proc: SummaryAcc,
}

impl CampaignSummaryAcc {
    /// An empty accumulator for a campaign labelled `label`.
    pub fn new(label: impl Into<String>) -> CampaignSummaryAcc {
        CampaignSummaryAcc {
            label: label.into(),
            n: 0,
            rtt: SummaryAcc::exact(),
            t_static: SummaryAcc::exact(),
            t_dynamic: SummaryAcc::exact(),
            t_delta: SummaryAcc::exact(),
            overall: SummaryAcc::exact(),
            proc: SummaryAcc::exact(),
        }
    }

    /// Folds in one query.
    pub fn push(&mut self, q: &ProcessedQuery) {
        self.n += 1;
        self.rtt.push(q.params.rtt_ms);
        self.t_static.push(q.params.t_static_ms);
        self.t_dynamic.push(q.params.t_dynamic_ms);
        self.t_delta.push(q.params.t_delta_ms);
        self.overall.push(q.params.overall_ms);
        if q.proc_ms > 0.0 {
            self.proc.push(q.proc_ms);
        }
    }

    /// Reduces to the summary; `None` when no query was folded.
    pub fn finish(&self) -> Option<CampaignSummary> {
        if self.n == 0 {
            return None;
        }
        Some(CampaignSummary {
            label: self.label.clone(),
            n: self.n,
            rtt: self.rtt.summary()?,
            t_static: self.t_static.summary()?,
            t_dynamic: self.t_dynamic.summary()?,
            t_delta: self.t_delta.summary()?,
            overall: self.overall.summary()?,
            true_proc: self.proc.summary(),
        })
    }

    /// Bytes retained across the six column buffers.
    pub fn retained(&self) -> usize {
        self.rtt.retained_bytes()
            + self.t_static.retained_bytes()
            + self.t_dynamic.retained_bytes()
            + self.t_delta.retained_bytes()
            + self.overall.retained_bytes()
            + self.proc.retained_bytes()
    }
}

impl QuerySink for CampaignSummaryAcc {
    type Output = Option<CampaignSummary>;

    fn on_query(&mut self, pq: &ProcessedQuery) {
        self.push(pq);
    }

    fn retained_bytes(&self) -> usize {
        self.retained()
    }

    fn finish(self) -> Option<CampaignSummary> {
        CampaignSummaryAcc::finish(&self)
    }
}

/// Renders campaign summaries as a GitHub-flavoured markdown table
/// (medians, with IQR in parentheses).
pub fn markdown_table(summaries: &[CampaignSummary]) -> String {
    let mut out = String::from(
        "| campaign | n | RTT (ms) | Tstatic | Tdynamic | Tdelta | overall | true Tproc |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for s in summaries {
        let cell = |x: &Summary| format!("{:.1} ({:.1})", x.median, x.p75 - x.p25);
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
            s.label,
            s.n,
            cell(&s.rtt),
            cell(&s.t_static),
            cell(&s.t_dynamic),
            cell(&s.t_delta),
            cell(&s.overall),
            match &s.true_proc {
                Some(p) => cell(p),
                None => "—".into(),
            },
        ));
    }
    out
}

/// Renders the same data as an aligned plain-text table for terminals.
pub fn text_table(summaries: &[CampaignSummary]) -> String {
    let mut out = format!(
        "{:<24} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "campaign", "n", "rtt", "Tstatic", "Tdynamic", "Tdelta", "overall"
    );
    for s in summaries {
        out.push_str(&format!(
            "{:<24} {:>6} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
            s.label,
            s.n,
            s.rtt.median,
            s.t_static.median,
            s.t_dynamic.median,
            s.t_delta.median,
            s.overall.median,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use inference::QueryParams;
    use searchbe::keywords::KeywordClass;

    fn q(rtt: f64, td: f64, proc: f64) -> ProcessedQuery {
        ProcessedQuery {
            qid: 1,
            client: 0,
            fe: Some(0),
            be: 0,
            keyword: 0,
            class: KeywordClass::Popular,
            t_start_ms: 0.0,
            params: QueryParams {
                rtt_ms: rtt,
                t_static_ms: rtt + 10.0,
                t_dynamic_ms: td,
                t_delta_ms: (td - rtt - 10.0).max(0.0),
                overall_ms: td + 100.0,
                static_bytes: 9000,
                total_bytes: 30000,
            },
            rtt_nominal_ms: rtt,
            rtt_fe_be_ms: 20.0,
            dist_fe_be_miles: 300.0,
            proc_ms: proc,
            fe_overhead_ms: 5.0,
            true_fetch_ms: Some(td - 5.0),
            outcome: cdnsim::QueryOutcome::Ok,
        }
    }

    #[test]
    fn summary_medians_correct() {
        let queries = vec![
            q(10.0, 100.0, 30.0),
            q(20.0, 200.0, 40.0),
            q(30.0, 300.0, 50.0),
        ];
        let s = CampaignSummary::of("test", &queries).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.rtt.median, 20.0);
        assert_eq!(s.t_dynamic.median, 200.0);
        assert_eq!(s.true_proc.as_ref().unwrap().median, 40.0);
    }

    #[test]
    fn empty_is_none() {
        assert!(CampaignSummary::of("x", &[]).is_none());
    }

    #[test]
    fn zero_proc_excluded_from_truth() {
        // FE cache hits report proc 0 and must not drag the Tproc column.
        let queries = vec![q(10.0, 100.0, 0.0), q(10.0, 100.0, 40.0)];
        let s = CampaignSummary::of("x", &queries).unwrap();
        assert_eq!(s.true_proc.as_ref().unwrap().n, 1);
        assert_eq!(s.true_proc.as_ref().unwrap().median, 40.0);
    }

    #[test]
    fn markdown_table_shape() {
        let queries = vec![q(10.0, 100.0, 30.0)];
        let s = CampaignSummary::of("svc-a", &queries).unwrap();
        let md = markdown_table(&[s]);
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("| campaign |"));
        assert!(lines[2].contains("svc-a"));
        assert_eq!(lines[2].matches('|').count(), 9);
    }

    #[test]
    fn text_table_alignment() {
        let queries = vec![q(10.0, 100.0, 30.0)];
        let a = CampaignSummary::of("short", &queries).unwrap();
        let b = CampaignSummary::of("a-much-longer-label", &queries).unwrap();
        let txt = text_table(&[a, b]);
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 3);
        // Columns line up: the numeric fields start at the same offsets.
        assert_eq!(lines[1].len(), lines[2].len());
    }
}
