//! The Sec. 3 caching probes.
//!
//! "In the first set, all measurement nodes submit the same search query
//! sequentially to a fixed FE server. In the second set, each node
//! submits a different search query to a fixed FE server. ... A total of
//! 40,000 keywords are used." Comparison of the resulting `Tdynamic`
//! distributions answers whether FEs cache (dynamically generated)
//! search results.

use crate::campaign::{Campaign, CampaignReport, Design, StreamReport};
use crate::runner::ProcessedQuery;
use crate::scenarios::Scenario;
use crate::sink::QuerySink;
use cdnsim::{QuerySpec, ServiceConfig};
use inference::caching::{caching_verdict, CachingProbe};
use simcore::time::SimDuration;

/// Configuration of one caching probe.
#[derive(Clone, Debug)]
pub struct CachingProbeRun {
    /// The fixed FE under test.
    pub fe: usize,
    /// Queries per design (per node × repeats).
    pub repeats_per_client: u64,
    /// Inter-query spacing.
    pub spacing: SimDuration,
    /// Only samples from vantages with RTT below this bound enter the
    /// comparison. Beyond the paper's RTT threshold, `Tdynamic` is pinned
    /// by window pacing whether or not a fetch happened, so far vantages
    /// carry no caching signal and only dilute the test.
    pub max_rtt_ms: f64,
}

/// The probe's outcome: both sample sets and the verdict.
#[derive(Clone, Debug)]
pub struct CachingOutcome {
    /// `Tdynamic` samples from the same-query design, ms.
    pub same_query_ms: Vec<f64>,
    /// `Tdynamic` samples from the distinct-query design, ms.
    pub distinct_query_ms: Vec<f64>,
    /// The statistical comparison and verdict.
    pub probe: CachingProbe,
}

impl CachingProbeRun {
    /// A standard probe against a given FE.
    pub fn against(fe: usize) -> CachingProbeRun {
        CachingProbeRun {
            fe,
            repeats_per_client: 6,
            spacing: SimDuration::from_secs(5),
            max_rtt_ms: 80.0,
        }
    }

    /// Runs both designs against `cfg` as a two-run campaign and
    /// compares.
    ///
    /// Design 1 (same query): all clients repeatedly submit one anchor
    /// keyword. Design 2 (distinct queries): every (client, repeat)
    /// submits a distinct keyword *of the anchor's class* — controlling
    /// for the keyword-class effect on `Tproc` so any distributional
    /// difference is attributable to caching alone.
    pub fn run(&self, scenario: &Scenario, cfg: ServiceConfig) -> Option<CachingOutcome> {
        let mut campaign = Campaign::new(scenario.clone());
        self.add_to(&mut campaign, "caching", cfg);
        self.outcome(&campaign.execute(), "caching")
    }

    /// Pushes the probe's two runs (`{prefix}/same`, `{prefix}/distinct`)
    /// onto a campaign, so several probes (different configs, different
    /// FEs) execute as one parallel batch.
    pub fn add_to(&self, campaign: &mut Campaign, prefix: &str, cfg: ServiceConfig) {
        campaign.push(format!("{prefix}/same"), cfg.clone(), self.design(true));
        campaign.push(format!("{prefix}/distinct"), cfg, self.design(false));
    }

    /// Extracts the comparison for the runs pushed under `prefix`.
    pub fn outcome(&self, report: &CampaignReport, prefix: &str) -> Option<CachingOutcome> {
        let pairs = |qs: &[ProcessedQuery]| -> Vec<(f64, f64)> {
            qs.iter()
                .map(|q| (q.params.rtt_ms, q.params.t_dynamic_ms))
                .collect()
        };
        self.outcome_from_pairs(
            &pairs(report.queries(&format!("{prefix}/same"))),
            &pairs(report.queries(&format!("{prefix}/distinct"))),
        )
    }

    /// [`outcome`](CachingProbeRun::outcome) over a streaming execution
    /// whose sinks were [`ProbeSink`]s.
    pub fn outcome_stream(
        &self,
        report: &StreamReport<Vec<(f64, f64)>>,
        prefix: &str,
    ) -> Option<CachingOutcome> {
        self.outcome_from_pairs(
            report.output(&format!("{prefix}/same")),
            report.output(&format!("{prefix}/distinct")),
        )
    }

    /// The comparison itself, over per-run `(rtt_ms, t_dynamic_ms)`
    /// sample pairs in completion order — all the probe retains per
    /// query under the streaming pipeline (16 bytes instead of the full
    /// processed record).
    pub fn outcome_from_pairs(
        &self,
        same: &[(f64, f64)],
        distinct: &[(f64, f64)],
    ) -> Option<CachingOutcome> {
        let near = |ps: &[(f64, f64)]| -> Vec<f64> {
            let filtered: Vec<f64> = ps
                .iter()
                .filter(|(rtt, _)| *rtt <= self.max_rtt_ms)
                .map(|&(_, td)| td)
                .collect();
            if filtered.len() >= 10 {
                filtered
            } else {
                // Too few close vantages: fall back to the full sample
                // (weaker test, still sound for the NoCaching direction).
                ps.iter().map(|&(_, td)| td).collect()
            }
        };
        let same_ms = near(same);
        let distinct_ms = near(distinct);
        let probe = caching_verdict(&same_ms, &distinct_ms)?;
        Some(CachingOutcome {
            same_query_ms: same_ms,
            distinct_query_ms: distinct_ms,
            probe,
        })
    }

    /// The streaming sink for a probe run: retains only the
    /// `(rtt_ms, t_dynamic_ms)` pair per query.
    pub fn sink() -> ProbeSink {
        ProbeSink::default()
    }

    fn design(&self, same_query: bool) -> Design {
        let fe = self.fe;
        let repeats = self.repeats_per_client;
        let spacing = self.spacing;
        Design::custom(move |sim| {
            sim.with(|w, net| {
                let be = w.be_of_fe(fe);
                w.prewarm(net, fe, be, 4);
                let n_clients = w.clients().len();
                // Anchor keyword and its class-mates (excluding the anchor).
                let anchor = w.corpus().get(0).clone();
                let class_mates: Vec<u64> = w
                    .corpus()
                    .all()
                    .iter()
                    .filter(|k| k.class == anchor.class && k.id != anchor.id)
                    .map(|k| k.id)
                    .collect();
                assert!(!class_mates.is_empty(), "corpus too small for the probe");
                for client in 0..n_clients {
                    let stagger = SimDuration::from_millis(3_000 + (client as u64 * 53) % 2_500);
                    for r in 0..repeats {
                        let keyword = if same_query {
                            anchor.id
                        } else {
                            // Distinct per (client, repeat), same class.
                            class_mates[((client as u64 * repeats + r) % class_mates.len() as u64)
                                as usize]
                        };
                        w.schedule_query(
                            net,
                            stagger + spacing * r,
                            QuerySpec {
                                client,
                                keyword,
                                fixed_fe: Some(fe),
                                instant_followup: false,
                            },
                        );
                    }
                }
            });
        })
    }
}

/// Streaming sink collecting each query's `(rtt_ms, t_dynamic_ms)` —
/// everything [`CachingProbeRun::outcome_from_pairs`] needs.
#[derive(Clone, Debug, Default)]
pub struct ProbeSink {
    pairs: Vec<(f64, f64)>,
}

impl QuerySink for ProbeSink {
    type Output = Vec<(f64, f64)>;

    fn on_query(&mut self, pq: &ProcessedQuery) {
        self.pairs.push((pq.params.rtt_ms, pq.params.t_dynamic_ms));
    }

    fn retained_bytes(&self) -> usize {
        self.pairs.capacity() * std::mem::size_of::<(f64, f64)>()
    }

    fn finish(self) -> Vec<(f64, f64)> {
        self.pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inference::caching::CachingVerdict;

    #[test]
    fn realistic_fes_do_not_cache() {
        let s = Scenario::small(31);
        let probe = CachingProbeRun::against(0);
        let out = probe.run(&s, ServiceConfig::google_like(31)).unwrap();
        assert_eq!(
            out.probe.verdict,
            CachingVerdict::NoCaching,
            "d={} same={} distinct={}",
            out.probe.ks_distance,
            out.probe.median_same_ms,
            out.probe.median_distinct_ms
        );
        assert!(out.same_query_ms.len() >= 10);
    }

    #[test]
    fn hypothetical_result_cache_is_detected() {
        let s = Scenario::small(32);
        let probe = CachingProbeRun::against(0);
        let out = probe
            .run(&s, ServiceConfig::google_like(32).with_fe_result_cache())
            .unwrap();
        assert_eq!(
            out.probe.verdict,
            CachingVerdict::CachingSuspected,
            "d={} same={} distinct={}",
            out.probe.ks_distance,
            out.probe.median_same_ms,
            out.probe.median_distinct_ms
        );
    }
}
