//! Streaming result sinks: the fold side of the campaign pipeline.
//!
//! A [`QuerySink`] consumes each [`ProcessedQuery`] the moment the
//! runner extracts it, instead of the legacy collect-then-analyze path
//! that buffered a `Vec<ProcessedQuery>` (plus cloned packet traces) per
//! run. `finish()` reduces the sink to its run-level output; the
//! campaign merges run outputs in **descriptor order**, which is the
//! whole determinism contract: per-run completion order is already
//! deterministic (sharding never splits a world), so any sink that folds
//! deterministically yields byte-identical campaign output at any
//! thread count.
//!
//! Raw [`CompletedQuery`] records — with their packet traces, the
//! dominant memory cost — are only retained when a sink opts in via
//! [`QuerySink::wants_raw`]; they are handed over **by value**, so
//! opting in moves the trace instead of cloning it and opting out never
//! materializes a copy at all. Wrap any sink in [`RetainRaw`] when a
//! harness genuinely needs traces (Fig. 4's packet-cluster views,
//! alternative-classifier scoring).

use crate::campaign::RunDescriptor;
use crate::runner::ProcessedQuery;
use cdnsim::{CompletedQuery, QueryOutcome};
use inference::SessionTally;

/// Folds one ground-truth outcome into a tally (the single definition
/// of the outcome→counter mapping; the runner and campaign previously
/// each had their own copy of this match).
pub fn observe_outcome(tally: &mut SessionTally, outcome: QueryOutcome) {
    match outcome {
        QueryOutcome::Ok => tally.ok += 1,
        QueryOutcome::Degraded => tally.degraded += 1,
        QueryOutcome::Retried(_) => tally.retried += 1,
        QueryOutcome::TimedOut { .. } => tally.timed_out += 1,
        QueryOutcome::Shed { .. } => tally.shed += 1,
    }
}

/// A per-run streaming reducer over processed queries.
///
/// The runner calls, per completed query: [`on_raw`] (only when
/// [`wants_raw`] is true, with the owned record) after [`on_query`]'s
/// input was extracted but before it is delivered — i.e. a sink
/// observes `on_raw` then `on_query` for each query, in completion
/// order. [`finish`] runs on the worker thread once the run is
/// quiescent.
///
/// [`on_raw`]: QuerySink::on_raw
/// [`on_query`]: QuerySink::on_query
/// [`wants_raw`]: QuerySink::wants_raw
/// [`finish`]: QuerySink::finish
pub trait QuerySink {
    /// The run-level reduction this sink produces.
    type Output;

    /// Opt-in to raw completion handoff. Default off: the runner then
    /// drops each trace as soon as the timeline is extracted and no
    /// clone is ever made.
    fn wants_raw(&self) -> bool {
        false
    }

    /// Folds one processed query (timeline successfully extracted).
    fn on_query(&mut self, pq: &ProcessedQuery);

    /// Receives the owned raw completion — packet trace included — when
    /// [`wants_raw`](QuerySink::wants_raw) returned true. Called for
    /// every completion, including ones whose timeline extraction
    /// failed (so classifier scorers see the failures too).
    fn on_raw(&mut self, _cq: CompletedQuery) {}

    /// Estimated bytes this sink currently retains. The runner samples
    /// it per drain chunk to report each run's peak; reducers should
    /// sum their buffers, `O(1)`-state sinks can keep the default.
    fn retained_bytes(&self) -> usize {
        0
    }

    /// Reduces to the run-level output.
    fn finish(self) -> Self::Output;
}

/// Builds one sink per run descriptor. Implemented for any
/// `Fn(&RunDescriptor) -> S` closure — campaigns call it on worker
/// threads, hence `Sync`.
pub trait SinkFactory: Sync {
    /// The sink type built per run.
    type Sink: QuerySink + Send;

    /// Builds the sink for run `d`.
    fn make(&self, d: &RunDescriptor) -> Self::Sink;
}

impl<S, F> SinkFactory for F
where
    F: Fn(&RunDescriptor) -> S + Sync,
    S: QuerySink + Send,
{
    type Sink = S;

    fn make(&self, d: &RunDescriptor) -> S {
        self(d)
    }
}

/// The legacy behaviour as a sink: buffers every processed query (and,
/// when built with `keep_raw`, every raw completion). Exists so the
/// compatibility [`Campaign::execute`](crate::Campaign::execute) path
/// and harnesses that genuinely need full query lists (e.g. per-session
/// grouping over a handful of queries) ride the same pipeline.
#[derive(Debug, Default)]
pub struct CollectSink {
    queries: Vec<ProcessedQuery>,
    raw: Option<Vec<CompletedQuery>>,
}

/// What a [`CollectSink`] reduces to.
#[derive(Debug, Default)]
pub struct Collected {
    /// Processed queries in completion order.
    pub queries: Vec<ProcessedQuery>,
    /// Raw completions (empty unless raw retention was requested).
    pub raw: Vec<CompletedQuery>,
}

impl CollectSink {
    /// A sink buffering processed queries only.
    pub fn new() -> CollectSink {
        CollectSink {
            queries: Vec::new(),
            raw: None,
        }
    }

    /// A sink that additionally retains raw completions when asked.
    pub fn with_raw(keep_raw: bool) -> CollectSink {
        CollectSink {
            queries: Vec::new(),
            raw: keep_raw.then(Vec::new),
        }
    }
}

impl QuerySink for CollectSink {
    type Output = Collected;

    fn wants_raw(&self) -> bool {
        self.raw.is_some()
    }

    fn on_query(&mut self, pq: &ProcessedQuery) {
        self.queries.push(pq.clone());
    }

    fn on_raw(&mut self, cq: CompletedQuery) {
        if let Some(raw) = &mut self.raw {
            raw.push(cq);
        }
    }

    fn retained_bytes(&self) -> usize {
        let raw: usize = self
            .raw
            .iter()
            .flatten()
            .map(|cq| cq.retained_bytes())
            .sum();
        self.queries.capacity() * std::mem::size_of::<ProcessedQuery>() + raw
    }

    fn finish(self) -> Collected {
        Collected {
            queries: self.queries,
            raw: self.raw.unwrap_or_default(),
        }
    }
}

/// Wraps any sink and additionally retains every raw completion. The
/// explicit opt-in for harnesses that need packet traces.
#[derive(Debug)]
pub struct RetainRaw<S> {
    inner: S,
    raw: Vec<CompletedQuery>,
}

impl<S> RetainRaw<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> RetainRaw<S> {
        RetainRaw {
            inner,
            raw: Vec::new(),
        }
    }
}

impl<S: QuerySink> QuerySink for RetainRaw<S> {
    type Output = (S::Output, Vec<CompletedQuery>);

    fn wants_raw(&self) -> bool {
        true
    }

    fn on_query(&mut self, pq: &ProcessedQuery) {
        self.inner.on_query(pq);
    }

    fn on_raw(&mut self, cq: CompletedQuery) {
        self.raw.push(cq);
    }

    fn retained_bytes(&self) -> usize {
        self.inner.retained_bytes() + self.raw.iter().map(|cq| cq.retained_bytes()).sum::<usize>()
    }

    fn finish(self) -> (S::Output, Vec<CompletedQuery>) {
        (self.inner.finish(), self.raw)
    }
}

/// A sink from a state value and a fold closure — the one-liner way to
/// build custom reducers in figure harnesses:
///
/// ```
/// # use emulator::sink::{FoldSink, QuerySink};
/// let mut sink = FoldSink::new(0u64, |n, _pq| *n += 1);
/// # let _ = &mut sink;
/// ```
#[derive(Debug)]
pub struct FoldSink<T, F> {
    state: T,
    fold: F,
}

impl<T, F: FnMut(&mut T, &ProcessedQuery)> FoldSink<T, F> {
    /// A sink folding `fold` over `state`.
    pub fn new(state: T, fold: F) -> FoldSink<T, F> {
        FoldSink { state, fold }
    }
}

impl<T, F: FnMut(&mut T, &ProcessedQuery)> QuerySink for FoldSink<T, F> {
    type Output = T;

    fn on_query(&mut self, pq: &ProcessedQuery) {
        (self.fold)(&mut self.state, pq);
    }

    fn finish(self) -> T {
        self.state
    }
}

/// Streams the canonical campaign TSV rows (the exact per-query format
/// of [`CampaignReport::to_tsv`](crate::CampaignReport::to_tsv), label
/// column included) into a string as queries complete. The determinism
/// suite uses it to check that a streaming campaign reproduces the
/// golden trace byte-for-byte without ever buffering a query.
#[derive(Debug)]
pub struct TsvRows {
    label: String,
    rows: String,
}

impl TsvRows {
    /// A row sink for the run labelled `label`.
    pub fn new(label: impl Into<String>) -> TsvRows {
        TsvRows {
            label: label.into(),
            rows: String::new(),
        }
    }

    /// Formats one query as its canonical TSV row.
    pub fn format_row(label: &str, q: &ProcessedQuery) -> String {
        let fe = q.fe.map_or(-1, |f| f as i64);
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{:?}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:?}\n",
            label,
            q.qid,
            q.client,
            fe,
            q.be,
            q.keyword,
            q.class,
            q.t_start_ms,
            q.params.rtt_ms,
            q.params.t_static_ms,
            q.params.t_dynamic_ms,
            q.params.t_delta_ms,
            q.params.overall_ms,
            q.outcome,
        )
    }
}

impl QuerySink for TsvRows {
    type Output = String;

    fn on_query(&mut self, pq: &ProcessedQuery) {
        self.rows.push_str(&Self::format_row(&self.label, pq));
    }

    fn retained_bytes(&self) -> usize {
        self.rows.capacity()
    }

    fn finish(self) -> String {
        self.rows
    }
}
