//! # emulator — the search-query emulator and experiment harness
//!
//! The paper's measurement apparatus: "an in-house user search query
//! emulator, which performs exactly the same functionality as the
//! web-based search box", deployed on 200–250 PlanetLab nodes, running
//! two experiment designs:
//!
//! * **Dataset A** ([`dataset_a`]) — every node queries its *default*
//!   (DNS-resolved) FE every 10 seconds;
//! * **Dataset B** ([`dataset_b`]) — one *fixed* FE at a time, queried
//!   from all nodes;
//!
//! plus the Sec. 3 caching probes ([`caching_probe`]: same-query vs
//! distinct-query designs over a 40,000-keyword corpus) and the Sec. 6
//! search-as-you-type sessions ([`instant_run`]).
//!
//! [`runner`] owns the mechanics: build a [`tcpsim::Sim`] around a
//! [`cdnsim::ServiceWorld`], drive it in time chunks, harvest completed
//! queries, extract each query's [`capture::Timeline`], and reduce to
//! [`ProcessedQuery`] records (raw packet traces are dropped as soon as
//! a timeline is extracted, so arbitrarily long campaigns run in bounded
//! memory).
//!
//! Experiments are expressed as [`campaign`]s: deterministically ordered
//! lists of independent run descriptors, executed across a worker pool
//! (`FECDN_THREADS`) and merged back in descriptor order so output is
//! byte-identical regardless of thread count.
//!
//! Results flow through [`sink`]s: each run folds its completions into
//! a [`QuerySink`](sink::QuerySink) as they drain (stream-and-reduce),
//! so campaign memory is bounded by reducer state rather than query
//! count, and raw packet traces are retained only when a sink opts in
//! ([`sink::RetainRaw`]).
//!
//! Every run also carries a [`simcore::telemetry::MetricsRegistry`]:
//! the runner harvests the transport- and service-layer registries at
//! quiescence, adds its own classification counters, and campaigns
//! merge per-run registries in descriptor order — the rendered
//! `metrics.tsv` obeys the same byte-determinism contract as the query
//! TSV.
//!
//! [`ProcessedQuery`]: runner::ProcessedQuery
//! [`instant_run`]: instant::InstantRun::run

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod caching_probe;
pub mod campaign;
pub mod dataset_a;
pub mod dataset_b;
pub mod instant;
pub mod output;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod sessions;
pub mod sink;

pub use campaign::{
    Campaign, CampaignReport, Design, RunDescriptor, RunResult, SinkRunReport, StreamReport,
    TSV_HEADER,
};
pub use runner::{run_collect, run_stream_fed, ProcessedQuery, StreamRun};
pub use scenarios::Scenario;
pub use sessions::{SessionFeeder, SessionPlan, SessionWorkload};
pub use simcore::telemetry::{MetricsRegistry, METRICS_TSV_HEADER};
pub use sink::{CollectSink, FoldSink, QuerySink, RetainRaw, SinkFactory, TsvRows};
