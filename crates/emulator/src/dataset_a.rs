//! Dataset A: default-FE experiments.
//!
//! "In the first set, search queries are launched from all measurement
//! nodes to their default FE servers every 10 seconds." Used for the
//! RTT CDF (Fig. 6), the default-FE `Tstatic`/`Tdynamic` scatter
//! (Fig. 7) and the per-node overall-delay box plots (Fig. 8).

use crate::campaign::{Campaign, Design};
use crate::runner::ProcessedQuery;
use crate::scenarios::Scenario;
use capture::Classifier;
use cdnsim::{QuerySpec, ServiceConfig, ServiceWorld};
use simcore::time::SimDuration;
use tcpsim::Sim;

/// How each repeat picks its keyword.
#[derive(Clone, Copy, Debug)]
pub enum KeywordPolicy {
    /// The same keyword for every query (the paired-comparison default).
    Fixed(u64),
    /// Zipf-popularity sampling from the corpus.
    Zipf,
    /// Round-robin over the first `n` keywords.
    RoundRobin(u64),
}

/// Dataset A configuration.
#[derive(Clone, Debug)]
pub struct DatasetA {
    /// Queries per vantage point.
    pub repeats: u64,
    /// Inter-query spacing (paper: 10 s).
    pub spacing: SimDuration,
    /// Keyword selection.
    pub keywords: KeywordPolicy,
}

impl Default for DatasetA {
    fn default() -> Self {
        DatasetA {
            repeats: 20,
            spacing: SimDuration::from_secs(10),
            keywords: KeywordPolicy::Fixed(0),
        }
    }
}

impl DatasetA {
    /// Schedules the design into a simulator: every client issues
    /// `repeats` queries to its default FE, spaced `spacing`, with a
    /// small per-client stagger so the campaign start is not synchronised.
    pub fn schedule(&self, sim: &mut Sim<ServiceWorld>) {
        let repeats = self.repeats;
        let spacing = self.spacing;
        let keywords = self.keywords;
        sim.with(|w, net| {
            let n_clients = w.clients().len();
            let corpus_len = w.corpus().len() as u64;
            for client in 0..n_clients {
                let stagger = SimDuration::from_millis(1 + (client as u64 * 37) % 2_000);
                for r in 0..repeats {
                    let keyword = match keywords {
                        KeywordPolicy::Fixed(k) => k % corpus_len,
                        KeywordPolicy::Zipf => w.corpus().sample(net.rng()).id,
                        KeywordPolicy::RoundRobin(n) => (r % n.max(1)) % corpus_len,
                    };
                    w.schedule_query(
                        net,
                        stagger + spacing * r,
                        QuerySpec {
                            client,
                            keyword,
                            fixed_fe: None,
                            instant_followup: false,
                        },
                    );
                }
            }
        });
    }

    /// Runs the design against one service as a single-run campaign and
    /// returns the processed queries.
    pub fn run(
        &self,
        scenario: &Scenario,
        cfg: ServiceConfig,
        classifier: &Classifier,
    ) -> Vec<ProcessedQuery> {
        let mut campaign = Campaign::new(scenario.clone());
        campaign
            .push("dataset-a", cfg, Design::DatasetA(self.clone()))
            .classifier = classifier.clone();
        let mut report = campaign.execute_with_threads(1);
        report.runs.remove(0).queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnsim::ServiceConfig;

    #[test]
    fn every_client_completes_every_repeat() {
        let s = Scenario::small(11);
        let d = DatasetA {
            repeats: 3,
            spacing: SimDuration::from_secs(2),
            keywords: KeywordPolicy::Fixed(5),
        };
        let out = d.run(&s, ServiceConfig::google_like(11), &Classifier::ByMarker);
        assert_eq!(out.len(), s.vantage_count() * 3);
        // All queries used the fixed keyword and the DNS-default FE.
        assert!(out.iter().all(|q| q.keyword == 5));
        assert!(out.iter().all(|q| q.fe.is_some()));
    }

    #[test]
    fn round_robin_policy_cycles() {
        let s = Scenario::small(12);
        let d = DatasetA {
            repeats: 4,
            spacing: SimDuration::from_secs(2),
            keywords: KeywordPolicy::RoundRobin(2),
        };
        let out = d.run(&s, ServiceConfig::google_like(12), &Classifier::ByMarker);
        let mut used: Vec<u64> = out.iter().map(|q| q.keyword).collect();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used, vec![0, 1]);
    }

    #[test]
    fn zipf_policy_prefers_popular_keywords() {
        let s = Scenario::small(13);
        let d = DatasetA {
            repeats: 6,
            spacing: SimDuration::from_secs(1),
            keywords: KeywordPolicy::Zipf,
        };
        let out = d.run(&s, ServiceConfig::google_like(13), &Classifier::ByMarker);
        let low_rank = out.iter().filter(|q| q.keyword < 50).count();
        assert!(
            low_rank * 3 > out.len(),
            "zipf should concentrate on early ranks: {low_rank}/{}",
            out.len()
        );
    }
}
