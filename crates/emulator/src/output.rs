//! TSV output helpers for the figure harnesses.
//!
//! Figure binaries print the same rows/series the paper plots: TSV to
//! stdout (machine-consumable), human-readable summaries to stderr.

use std::io::Write;

/// A TSV table writer.
pub struct Tsv<W: Write> {
    out: W,
    cols: usize,
    rows_written: usize,
}

impl<W: Write> Tsv<W> {
    /// Starts a table, writing the header line.
    pub fn new(mut out: W, header: &[&str]) -> std::io::Result<Tsv<W>> {
        writeln!(out, "{}", header.join("\t"))?;
        Ok(Tsv {
            out,
            cols: header.len(),
            rows_written: 0,
        })
    }

    /// Writes one row; panics if the column count differs from the
    /// header.
    pub fn row(&mut self, cells: &[String]) -> std::io::Result<()> {
        assert_eq!(cells.len(), self.cols, "TSV row width mismatch");
        writeln!(self.out, "{}", cells.join("\t"))?;
        self.rows_written += 1;
        Ok(())
    }

    /// Convenience for numeric rows (3 decimal places).
    pub fn row_f64(&mut self, cells: &[f64]) -> std::io::Result<()> {
        let fmt: Vec<String> = cells.iter().map(|v| format!("{v:.3}")).collect();
        self.row(&fmt)
    }

    /// Rows written so far (header excluded).
    pub fn rows_written(&self) -> usize {
        self.rows_written
    }
}

/// Formats a labelled numeric row for stderr summaries.
pub fn kv(label: &str, value: f64) -> String {
    format!("{label:<42} {value:>10.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let mut buf = Vec::new();
        {
            let mut t = Tsv::new(&mut buf, &["rtt_ms", "t_static_ms"]).unwrap();
            t.row(&["10".into(), "25.5".into()]).unwrap();
            t.row_f64(&[20.0, 30.25]).unwrap();
            assert_eq!(t.rows_written(), 2);
        }
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "rtt_ms\tt_static_ms");
        assert_eq!(lines[1], "10\t25.5");
        assert_eq!(lines[2], "20.000\t30.250");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut buf = Vec::new();
        let mut t = Tsv::new(&mut buf, &["a", "b"]).unwrap();
        t.row(&["only-one".into()]).unwrap();
    }

    #[test]
    fn kv_formats() {
        let s = kv("threshold_ms", 72.5);
        assert!(s.contains("threshold_ms"));
        assert!(s.contains("72.500"));
    }
}
