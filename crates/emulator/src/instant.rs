//! Search-as-you-type campaigns (Sec. 6).
//!
//! Each keystroke past a minimum prefix fires a separate query over a
//! *new TCP connection*; all but the first are correlated follow-ups
//! that the BE processes faster. The paper's claim: "the delivery of
//! each query hence still fits our basic model" — verified here by
//! extracting a full timeline from every sub-query.

use crate::campaign::{Campaign, Design};
use crate::runner::ProcessedQuery;
use crate::scenarios::Scenario;
use cdnsim::{QuerySpec, ServiceConfig, ServiceWorld};
use searchbe::instant::instant_session;
use simcore::time::SimDuration;
use tcpsim::Sim;

/// Configuration of one instant-search campaign.
#[derive(Clone, Debug)]
pub struct InstantRun {
    /// Clients participating.
    pub clients: Vec<usize>,
    /// The final (fully typed) keyword each client searches.
    pub keyword: u64,
    /// Minimum prefix length before the first sub-query fires.
    pub min_prefix: usize,
}

/// One processed instant session: the per-keystroke sub-queries of one
/// client in issue order.
#[derive(Clone, Debug)]
pub struct InstantSession {
    /// The client.
    pub client: usize,
    /// Sub-queries in keystroke order.
    pub subqueries: Vec<ProcessedQuery>,
}

impl InstantRun {
    /// Schedules the per-keystroke sub-queries into a world. Keystroke
    /// gaps are drawn from the world's own RNG, so the schedule is part
    /// of the shard and reproducible from its descriptor.
    pub fn schedule(&self, sim: &mut Sim<ServiceWorld>) {
        let keyword = self.keyword;
        let min_prefix = self.min_prefix;
        let clients = self.clients.clone();
        sim.with(|w, net| {
            let kw = w.corpus().get(keyword).clone();
            for &client in &clients {
                let steps = instant_session(&kw, min_prefix, net.rng());
                let mut at = SimDuration::from_millis(1);
                for step in steps {
                    at += step.gap;
                    w.schedule_query(
                        net,
                        at,
                        QuerySpec {
                            client,
                            keyword,
                            fixed_fe: None,
                            instant_followup: step.followup,
                        },
                    );
                }
            }
        });
    }

    /// Groups a run's processed queries into per-client sessions in
    /// keystroke (issue-time) order.
    pub fn sessions(&self, processed: &[ProcessedQuery]) -> Vec<InstantSession> {
        self.clients
            .iter()
            .map(|&client| {
                let mut subqueries: Vec<ProcessedQuery> = processed
                    .iter()
                    .filter(|q| q.client == client)
                    .cloned()
                    .collect();
                subqueries.sort_by(|a, b| a.t_start_ms.partial_cmp(&b.t_start_ms).unwrap());
                InstantSession { client, subqueries }
            })
            .collect()
    }

    /// The campaign design scheduling this run.
    pub fn design(&self) -> Design {
        let this = self.clone();
        Design::custom(move |sim| this.schedule(sim))
    }

    /// Runs as a single-run campaign; returns one session per client.
    pub fn run(&self, scenario: &Scenario, cfg: ServiceConfig) -> Vec<InstantSession> {
        let mut campaign = Campaign::new(scenario.clone());
        campaign.push("instant", cfg, self.design());
        let report = campaign.execute_with_threads(1);
        self.sessions(report.queries("instant"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_keystroke_yields_a_model_conformant_query() {
        let s = Scenario::small(41);
        let run = InstantRun {
            clients: vec![0, 1],
            keyword: 2,
            min_prefix: 3,
        };
        let sessions = run.run(&s, ServiceConfig::google_like(41));
        assert_eq!(sessions.len(), 2);
        for sess in &sessions {
            let kw_len = s.corpus.get(2).chars();
            assert_eq!(sess.subqueries.len(), kw_len - 3 + 1);
            for q in &sess.subqueries {
                // "still fits our basic model": a full timeline with
                // consistent parameters was extracted.
                assert!(q.params.is_consistent(0.5));
                assert!(q.params.t_dynamic_ms > 0.0);
            }
        }
    }

    #[test]
    fn followups_are_processed_faster_on_average() {
        let s = Scenario::small(42);
        let run = InstantRun {
            clients: (0..6).collect(),
            keyword: 4,
            min_prefix: 3,
        };
        let sessions = run.run(&s, ServiceConfig::bing_like(42));
        let mut first = Vec::new();
        let mut later = Vec::new();
        for sess in &sessions {
            for (i, q) in sess.subqueries.iter().enumerate() {
                if i == 0 {
                    first.push(q.proc_ms);
                } else {
                    later.push(q.proc_ms);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&later) < 0.8 * mean(&first),
            "followups {} vs first {}",
            mean(&later),
            mean(&first)
        );
    }
}
