//! Sharded parallel campaign execution.
//!
//! A [`Campaign`] is a deterministically ordered list of independent
//! [`RunDescriptor`]s — each one a full simulator world: a
//! `ServiceConfig` plus an experiment design plus a derived seed. Runs
//! execute across a
//! [`std::thread::scope`] worker pool and their results are merged back
//! in descriptor order, so campaign output is byte-identical regardless
//! of worker count. The sharding boundary is the whole sim world: FE
//! queue interactions between clients *inside* one world are untouched,
//! only unrelated worlds run concurrently.
//!
//! Each run's world seed is [`simcore::rng::stream_seed`]`(campaign
//! seed, run label)`, a named child stream — adding or reordering runs
//! never perturbs the seed (and hence the packet trace) of any other
//! run. Worker count comes from `FECDN_THREADS` (default: available
//! parallelism; `1` is exactly the historical serial path).

use crate::dataset_a::DatasetA;
use crate::dataset_b::DatasetB;
use crate::runner::{run_stream, run_stream_fed, ProcessedQuery};
use crate::scenarios::Scenario;
use crate::sessions::{SessionFeeder, SessionWorkload};
use crate::sink::{CollectSink, QuerySink, SinkFactory};
use capture::Classifier;
use cdnsim::{CompletedQuery, ServiceConfig, ServiceWorld};
use inference::SessionTally;
use simcore::rng::stream_seed;
use simcore::telemetry::{MetricsRegistry, METRICS_TSV_HEADER};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tcpsim::Sim;

/// Reads the worker count from `FECDN_THREADS`. Unset or `0` means the
/// machine's available parallelism; `1` forces the serial path.
pub fn threads_from_env() -> usize {
    match std::env::var("FECDN_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// A boxed scheduling function for [`Design::Custom`].
pub type ScheduleFn = Arc<dyn Fn(&mut Sim<ServiceWorld>) + Send + Sync>;

/// The experiment design a run schedules into its world.
#[derive(Clone)]
pub enum Design {
    /// Dataset A: every client queries its default FE.
    DatasetA(DatasetA),
    /// Dataset B: every client queries one fixed FE.
    DatasetB(DatasetB),
    /// An arbitrary scheduling function. It runs on the worker thread
    /// that owns the shard, against the freshly built world — any
    /// in-world planning (picking an FE, probing geometry) happens here,
    /// not outside, so the descriptor stays self-contained.
    Custom(ScheduleFn),
    /// A generative session-slab workload: sessions are materialised
    /// lazily by a [`SessionFeeder`] as the run drains, so the run's
    /// footprint is O(live sessions), not O(total queries). Nothing is
    /// scheduled up front.
    Sessions(SessionWorkload),
}

impl Design {
    /// Wraps a scheduling closure.
    pub fn custom(f: impl Fn(&mut Sim<ServiceWorld>) + Send + Sync + 'static) -> Design {
        Design::Custom(Arc::new(f))
    }

    /// Schedules this design into a world. Session-slab designs
    /// schedule nothing here — their feeder materialises sessions
    /// chunk by chunk inside the runner.
    pub fn schedule(&self, sim: &mut Sim<ServiceWorld>) {
        match self {
            Design::DatasetA(d) => d.schedule(sim),
            Design::DatasetB(d) => d.schedule(sim),
            Design::Custom(f) => f(sim),
            Design::Sessions(_) => {}
        }
    }
}

impl fmt::Debug for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Design::DatasetA(d) => f.debug_tuple("DatasetA").field(d).finish(),
            Design::DatasetB(d) => f.debug_tuple("DatasetB").field(d).finish(),
            Design::Custom(_) => f.write_str("Custom(..)"),
            Design::Sessions(w) => f.debug_tuple("Sessions").field(w).finish(),
        }
    }
}

/// One independent run: a service configuration plus a design, with a
/// world seed derived from the campaign seed and the run label.
#[derive(Clone, Debug)]
pub struct RunDescriptor {
    /// Unique label (also the seed-derivation name and the merge key).
    pub label: String,
    /// The service under test.
    pub cfg: ServiceConfig,
    /// The experiment design.
    pub design: Design,
    /// Network-side world seed (derived; see [`Campaign::push`]).
    pub seed: u64,
    /// Timeline classifier used when processing completions.
    pub classifier: Classifier,
    /// Retain raw completions (with packet traces) in the result. Off by
    /// default: traces dominate memory on long campaigns.
    pub keep_raw: bool,
    /// Per-run telemetry override: `Some(on)` forces the run's
    /// registries on or off regardless of `FECDN_METRICS`; `None`
    /// (default) leaves the environment gate in force. Tests use this to
    /// stay independent of process-global environment state.
    pub metrics: Option<bool>,
}

/// Execution bookkeeping of one run, surfaced so speedups are measurable.
#[derive(Clone, Copy, Debug)]
pub struct RunStats {
    /// Worker slot that executed the run.
    pub worker: usize,
    /// Milliseconds the run waited from campaign start to pickup.
    pub queue_ms: f64,
    /// Wall-clock milliseconds of build + schedule + drive.
    pub wall_ms: f64,
    /// Peak bytes the run's sink retained (sampled per drain chunk) —
    /// the memory-boundedness signal the campaign benchmark tracks.
    pub peak_retained_bytes: usize,
    /// High-water mark of the pending-event count (only non-zero for
    /// session-slab designs) — the O(live sessions) footprint proxy.
    pub peak_pending_events: usize,
}

/// The merged output of one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The descriptor's label.
    pub label: String,
    /// Processed queries in completion order.
    pub queries: Vec<ProcessedQuery>,
    /// Raw completions (empty unless the descriptor set `keep_raw`).
    pub raw: Vec<CompletedQuery>,
    /// Outcome/skip accounting for the run.
    pub tally: SessionTally,
    /// Wall-clock and queue bookkeeping.
    pub stats: RunStats,
    /// The run's telemetry registry (see [`crate::StreamRun::metrics`]).
    pub metrics: MetricsRegistry,
}

/// One run's report from a streaming execution: accounting plus
/// whatever the run's sink reduced to.
#[derive(Clone, Debug)]
pub struct SinkRunReport<R> {
    /// The descriptor's label.
    pub label: String,
    /// Outcome/skip accounting for the run.
    pub tally: SessionTally,
    /// Wall-clock, queue and peak-memory bookkeeping.
    pub stats: RunStats,
    /// The run's telemetry registry (see [`crate::StreamRun::metrics`]).
    pub metrics: MetricsRegistry,
    /// The sink's reduction.
    pub output: R,
}

/// The merged output of a streaming campaign execution, in descriptor
/// order — the stream-and-reduce counterpart of [`CampaignReport`].
#[derive(Clone, Debug)]
pub struct StreamReport<R> {
    /// Per-run reports, in descriptor order (not completion order).
    pub runs: Vec<SinkRunReport<R>>,
    /// Worker count used.
    pub threads: usize,
    /// Campaign wall-clock, ms.
    pub wall_ms: f64,
}

impl<R> StreamReport<R> {
    /// The report of the labelled run, if present.
    pub fn get(&self, label: &str) -> Option<&SinkRunReport<R>> {
        self.runs.iter().find(|r| r.label == label)
    }

    /// The sink output of the labelled run. Panics on an unknown label
    /// — descriptor labels are static strings, so a miss is a bug.
    pub fn output(&self, label: &str) -> &R {
        &self
            .get(label)
            .unwrap_or_else(|| panic!("no campaign run labelled {label:?}"))
            .output
    }

    /// The tally of the labelled run (panics on an unknown label).
    pub fn tally(&self, label: &str) -> &SessionTally {
        &self
            .get(label)
            .unwrap_or_else(|| panic!("no campaign run labelled {label:?}"))
            .tally
    }

    /// Largest per-run peak of sink-retained bytes across the campaign.
    pub fn peak_retained_bytes(&self) -> usize {
        self.runs
            .iter()
            .map(|r| r.stats.peak_retained_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Sum of per-run wall-clock times — what a serial execution would
    /// have cost.
    pub fn serial_ms(&self) -> f64 {
        self.runs.iter().map(|r| r.stats.wall_ms).sum()
    }

    /// Serial-equivalent time over actual wall-clock time.
    pub fn speedup(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.serial_ms() / self.wall_ms
        } else {
            1.0
        }
    }

    /// Renders per-run wall-clock + queue stats plus the campaign
    /// speedup line, for stderr (see [`CampaignReport::stats_table`]).
    pub fn stats_table(&self) -> String {
        let rows: Vec<StatsRow> = self
            .runs
            .iter()
            .map(|r| StatsRow {
                label: &r.label,
                queries: r.tally.total() - r.tally.skipped.min(r.tally.total()),
                skipped: r.tally.skipped,
                stats: &r.stats,
            })
            .collect();
        render_stats_table(
            &rows,
            self.threads,
            self.wall_ms,
            self.serial_ms(),
            self.speedup(),
        )
    }

    /// The deterministic per-run metrics document (`metrics.tsv`
    /// format), rows in descriptor order — byte-identical at any worker
    /// count.
    pub fn metrics_tsv(&self) -> String {
        render_metrics_doc(
            self.runs.iter().map(|r| (r.label.as_str(), &r.metrics)),
            false,
        )
    }

    /// [`StreamReport::metrics_tsv`] including wall-clock rows — stderr
    /// diagnostics only, never byte-compared.
    pub fn metrics_tsv_all(&self) -> String {
        render_metrics_doc(
            self.runs.iter().map(|r| (r.label.as_str(), &r.metrics)),
            true,
        )
    }

    /// All per-run registries merged in descriptor order.
    pub fn merged_metrics(&self) -> MetricsRegistry {
        merge_metrics(self.runs.iter().map(|r| &r.metrics))
    }

    /// The complete stderr report: the wall-clock stats table followed
    /// by the full metrics document, all buffered here and emitted by
    /// the caller in one write — per-run lines can never interleave
    /// across runs, whatever the worker contention looked like.
    pub fn stderr_report(&self) -> String {
        let mut out = self.stats_table();
        out.push_str(&self.metrics_tsv_all());
        out
    }
}

struct StatsRow<'a> {
    label: &'a str,
    queries: usize,
    skipped: usize,
    stats: &'a RunStats,
}

fn render_stats_table(
    rows: &[StatsRow<'_>],
    threads: usize,
    wall_ms: f64,
    serial_ms: f64,
    speedup: f64,
) -> String {
    let mut out = format!(
        "{:<28} {:>8} {:>8} {:>10} {:>10} {:>7}\n",
        "run", "queries", "skipped", "queue_ms", "wall_ms", "worker"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<28} {:>8} {:>8} {:>10.0} {:>10.0} {:>7}\n",
            r.label, r.queries, r.skipped, r.stats.queue_ms, r.stats.wall_ms, r.stats.worker,
        ));
    }
    out.push_str(&format!(
        "campaign: {} runs on {} thread(s), wall {:.0} ms, serial-equivalent {:.0} ms, speedup {:.2}x\n",
        rows.len(),
        threads,
        wall_ms,
        serial_ms,
        speedup,
    ));
    out
}

/// Renders the per-run metrics document: the shared header plus each
/// run's rows (prefixed with its label), in the order given — which both
/// report types fix to descriptor order.
fn render_metrics_doc<'a>(
    runs: impl Iterator<Item = (&'a str, &'a MetricsRegistry)>,
    include_wall: bool,
) -> String {
    let mut out = String::from(METRICS_TSV_HEADER);
    for (label, m) in runs {
        m.render_rows(label, include_wall, &mut out);
    }
    out
}

/// Merges registries left to right (callers pass descriptor order).
fn merge_metrics<'a>(runs: impl Iterator<Item = &'a MetricsRegistry>) -> MetricsRegistry {
    let mut merged = MetricsRegistry::new();
    for m in runs {
        merged.merge(m);
    }
    merged
}

/// Column header of the canonical campaign TSV, shared by
/// [`CampaignReport::to_tsv`] and consumers reassembling the same
/// document from streamed [`crate::TsvRows`] output.
pub const TSV_HEADER: &str = "run\tqid\tclient\tfe\tbe\tkeyword\tclass\tt_start_ms\trtt_ms\t\
                              t_static_ms\tt_dynamic_ms\tt_delta_ms\toverall_ms\toutcome\n";

/// The merged results of a campaign, in descriptor order.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Per-run results, in descriptor order (not completion order).
    pub runs: Vec<RunResult>,
    /// Worker count used.
    pub threads: usize,
    /// Campaign wall-clock, ms.
    pub wall_ms: f64,
}

impl CampaignReport {
    /// The result of the labelled run, if present.
    pub fn get(&self, label: &str) -> Option<&RunResult> {
        self.runs.iter().find(|r| r.label == label)
    }

    /// The processed queries of the labelled run. Panics on an unknown
    /// label — descriptor labels are static strings, so a miss is a bug.
    pub fn queries(&self, label: &str) -> &[ProcessedQuery] {
        &self
            .get(label)
            .unwrap_or_else(|| panic!("no campaign run labelled {label:?}"))
            .queries
    }

    /// Sum of per-run wall-clock times — what a serial execution would
    /// have cost.
    pub fn serial_ms(&self) -> f64 {
        self.runs.iter().map(|r| r.stats.wall_ms).sum()
    }

    /// Serial-equivalent time over actual wall-clock time.
    pub fn speedup(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.serial_ms() / self.wall_ms
        } else {
            1.0
        }
    }

    /// Renders per-run wall-clock + queue stats plus the campaign
    /// speedup line, for stderr. Never part of stdout TSV: timings vary
    /// run to run while the TSV must stay byte-identical.
    pub fn stats_table(&self) -> String {
        let rows: Vec<StatsRow> = self
            .runs
            .iter()
            .map(|r| StatsRow {
                label: &r.label,
                queries: r.queries.len(),
                skipped: r.tally.skipped,
                stats: &r.stats,
            })
            .collect();
        render_stats_table(
            &rows,
            self.threads,
            self.wall_ms,
            self.serial_ms(),
            self.speedup(),
        )
    }

    /// The deterministic per-run metrics document (`metrics.tsv`
    /// format), rows in descriptor order.
    pub fn metrics_tsv(&self) -> String {
        render_metrics_doc(
            self.runs.iter().map(|r| (r.label.as_str(), &r.metrics)),
            false,
        )
    }

    /// [`CampaignReport::metrics_tsv`] including wall-clock rows.
    pub fn metrics_tsv_all(&self) -> String {
        render_metrics_doc(
            self.runs.iter().map(|r| (r.label.as_str(), &r.metrics)),
            true,
        )
    }

    /// All per-run registries merged in descriptor order.
    pub fn merged_metrics(&self) -> MetricsRegistry {
        merge_metrics(self.runs.iter().map(|r| &r.metrics))
    }

    /// The complete stderr report: stats table plus metrics document,
    /// buffered into one string so per-run lines are emitted in
    /// descriptor order in a single write.
    pub fn stderr_report(&self) -> String {
        let mut out = self.stats_table();
        out.push_str(&self.metrics_tsv_all());
        out
    }

    /// Canonical TSV serialisation of the merged campaign — the golden
    /// trace. One `#` accounting line plus one row per processed query,
    /// per run, in descriptor order. Everything here is virtual-time or
    /// outcome data: byte-identical across worker counts and machines.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from(TSV_HEADER);
        for r in &self.runs {
            let t = &r.tally;
            // `shed` only appears when non-zero so pre-overload goldens
            // stay byte-identical.
            let shed = if t.shed > 0 {
                format!(" shed={}", t.shed)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "# run={} ok={} degraded={} retried={} timed_out={}{} skipped={}\n",
                r.label, t.ok, t.degraded, t.retried, t.timed_out, shed, t.skipped
            ));
            for q in &r.queries {
                let fe = q.fe.map_or(-1, |f| f as i64);
                out.push_str(&format!(
                    "{}\t{}\t{}\t{}\t{}\t{}\t{:?}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:?}\n",
                    r.label,
                    q.qid,
                    q.client,
                    fe,
                    q.be,
                    q.keyword,
                    q.class,
                    q.t_start_ms,
                    q.params.rtt_ms,
                    q.params.t_static_ms,
                    q.params.t_dynamic_ms,
                    q.params.t_delta_ms,
                    q.params.overall_ms,
                    q.outcome,
                ));
            }
        }
        out
    }
}

/// A deterministically ordered list of independent runs over one shared
/// [`Scenario`].
#[derive(Clone, Debug)]
pub struct Campaign {
    scenario: Scenario,
    runs: Vec<RunDescriptor>,
}

impl Campaign {
    /// An empty campaign over `scenario`.
    pub fn new(scenario: Scenario) -> Campaign {
        Campaign {
            scenario,
            runs: Vec::new(),
        }
    }

    /// The shared scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether the campaign has no runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The descriptors, in execution (= merge) order.
    pub fn descriptors(&self) -> &[RunDescriptor] {
        &self.runs
    }

    /// Appends a run. The world seed is derived from the campaign seed
    /// and the label, so every run owns an independent named stream and
    /// adding a run never perturbs another. Returns the descriptor for
    /// optional tweaks (`classifier`, `keep_raw`). Panics on a duplicate
    /// label: labels are merge keys and seed-derivation names.
    pub fn push(
        &mut self,
        label: impl Into<String>,
        cfg: ServiceConfig,
        design: Design,
    ) -> &mut RunDescriptor {
        let label = label.into();
        assert!(
            self.runs.iter().all(|r| r.label != label),
            "duplicate campaign run label {label:?}"
        );
        let seed = stream_seed(self.scenario.seed, &label);
        self.runs.push(RunDescriptor {
            label,
            cfg,
            design,
            seed,
            classifier: Classifier::ByMarker,
            keep_raw: false,
            metrics: None,
        });
        self.runs.last_mut().expect("just pushed")
    }

    /// Executes with the worker count from `FECDN_THREADS`.
    ///
    /// Compatibility path: runs the streaming pipeline with a
    /// [`CollectSink`] per run, so results still arrive as full
    /// `Vec<ProcessedQuery>` buffers (and raw traces when a descriptor
    /// set `keep_raw`). Harnesses that reduce online should prefer
    /// [`Campaign::execute_stream`].
    pub fn execute(&self) -> CampaignReport {
        self.execute_with_threads(threads_from_env())
    }

    /// [`Campaign::execute`] with an explicit worker count.
    pub fn execute_with_threads(&self, threads: usize) -> CampaignReport {
        let report = self.execute_stream_with_threads(
            &|d: &RunDescriptor| CollectSink::with_raw(d.keep_raw),
            threads,
        );
        let threads = report.threads;
        let wall_ms = report.wall_ms;
        CampaignReport {
            runs: report
                .runs
                .into_iter()
                .map(|r| RunResult {
                    label: r.label,
                    queries: r.output.queries,
                    raw: r.output.raw,
                    tally: r.tally,
                    stats: r.stats,
                    metrics: r.metrics,
                })
                .collect(),
            threads,
            wall_ms,
        }
    }

    /// Streams the campaign with the worker count from `FECDN_THREADS`:
    /// one sink per run (built by `factory` on the worker thread),
    /// folded as queries complete, reduced on quiescence, reports merged
    /// in descriptor order. Memory is O(reducer state), not
    /// O(total queries).
    pub fn execute_stream<F>(&self, factory: &F) -> StreamReport<<F::Sink as QuerySink>::Output>
    where
        F: SinkFactory,
        <F::Sink as QuerySink>::Output: Send,
    {
        self.execute_stream_with_threads(factory, threads_from_env())
    }

    /// [`Campaign::execute_stream`] across `threads` workers (clamped to
    /// the run count; `<= 1` runs serially on the calling thread with no
    /// pool at all). Reports are merged in descriptor order regardless
    /// of which worker finished when, so output stays byte-identical at
    /// any thread count.
    pub fn execute_stream_with_threads<F>(
        &self,
        factory: &F,
        threads: usize,
    ) -> StreamReport<<F::Sink as QuerySink>::Output>
    where
        F: SinkFactory,
        <F::Sink as QuerySink>::Output: Send,
    {
        let t0 = Instant::now();
        let n = self.runs.len();
        let threads = threads.max(1).min(n.max(1));
        let runs = if threads <= 1 {
            self.runs
                .iter()
                .map(|d| self.execute_one(factory, d, 0, t0))
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let mut slots: Vec<Option<SinkRunReport<_>>> = (0..n).map(|_| None).collect();
            let finished: Vec<(usize, SinkRunReport<_>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|worker| {
                        let next = &next;
                        scope.spawn(move || {
                            let mut mine = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                mine.push((
                                    i,
                                    self.execute_one(factory, &self.runs[i], worker, t0),
                                ));
                            }
                            mine
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("campaign worker panicked"))
                    .collect()
            });
            for (i, r) in finished {
                slots[i] = Some(r);
            }
            slots
                .into_iter()
                .map(|s| s.expect("every run index was dispatched exactly once"))
                .collect()
        };
        StreamReport {
            runs,
            threads,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        }
    }

    /// Builds, schedules and drives one shard to quiescence, folding
    /// completions into a fresh sink from `factory`.
    fn execute_one<F: SinkFactory>(
        &self,
        factory: &F,
        d: &RunDescriptor,
        worker: usize,
        campaign_start: Instant,
    ) -> SinkRunReport<<F::Sink as QuerySink>::Output> {
        let queue_ms = campaign_start.elapsed().as_secs_f64() * 1e3;
        let started = Instant::now();
        let mut sim = self.scenario.spec(d.cfg.clone(), d.seed).build();
        // Per-descriptor telemetry override, applied before any event is
        // processed so the registries see the whole run or none of it.
        if let Some(on) = d.metrics {
            sim.net().metrics_mut().set_enabled(on);
            sim.with(|w, _| w.metrics_mut().set_enabled(on));
        }
        let run = match &d.design {
            Design::Sessions(w) => {
                let (n_clients, catalog) =
                    sim.with(|world, _| (world.clients().len(), world.corpus().len()));
                let mut feeder = SessionFeeder::new(w.clone(), d.seed, n_clients, catalog);
                run_stream_fed(&mut sim, &d.classifier, factory.make(d), Some(&mut feeder))
            }
            _ => {
                d.design.schedule(&mut sim);
                run_stream(&mut sim, &d.classifier, factory.make(d))
            }
        };
        let mut metrics = run.metrics;
        if metrics.is_enabled() {
            metrics.set_wall_gauge("emulator.queue_wait_ms", queue_ms);
            metrics.set_wall_gauge(
                "emulator.run_wall_ms",
                started.elapsed().as_secs_f64() * 1e3,
            );
        }
        SinkRunReport {
            label: d.label.clone(),
            tally: run.tally,
            stats: RunStats {
                worker,
                queue_ms,
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
                peak_retained_bytes: run.peak_retained_bytes,
                peak_pending_events: run.peak_pending_events,
            },
            metrics,
            output: run.output,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset_a::KeywordPolicy;
    use simcore::time::SimDuration;

    fn two_run_campaign(seed: u64) -> Campaign {
        let mut c = Campaign::new(Scenario::small(seed));
        let d = DatasetA {
            repeats: 2,
            spacing: SimDuration::from_secs(2),
            keywords: KeywordPolicy::Fixed(3),
        };
        c.push(
            "bing",
            ServiceConfig::bing_like(seed),
            Design::DatasetA(d.clone()),
        );
        c.push(
            "google",
            ServiceConfig::google_like(seed),
            Design::DatasetA(d),
        );
        c
    }

    #[test]
    fn merge_order_is_descriptor_order() {
        let report = two_run_campaign(51).execute_with_threads(2);
        assert_eq!(report.runs.len(), 2);
        assert_eq!(report.runs[0].label, "bing");
        assert_eq!(report.runs[1].label, "google");
        assert!(report.get("google").is_some());
        assert!(report.get("absent").is_none());
    }

    #[test]
    fn parallel_output_matches_serial_exactly() {
        let c = two_run_campaign(52);
        let serial = c.execute_with_threads(1);
        let parallel = c.execute_with_threads(4);
        assert_eq!(serial.to_tsv(), parallel.to_tsv());
        assert_eq!(serial.threads, 1);
        // Thread count clamps to the run count.
        assert_eq!(parallel.threads, 2);
    }

    #[test]
    fn run_seeds_are_label_derived_and_stable() {
        let c = two_run_campaign(53);
        let d = c.descriptors();
        assert_eq!(d[0].seed, stream_seed(53, "bing"));
        assert_eq!(d[1].seed, stream_seed(53, "google"));
        assert_ne!(d[0].seed, d[1].seed);
    }

    #[test]
    #[should_panic(expected = "duplicate campaign run label")]
    fn duplicate_labels_are_rejected() {
        let mut c = Campaign::new(Scenario::small(54));
        let d = DatasetA {
            repeats: 1,
            spacing: SimDuration::from_secs(1),
            keywords: KeywordPolicy::Fixed(0),
        };
        c.push(
            "x",
            ServiceConfig::bing_like(54),
            Design::DatasetA(d.clone()),
        );
        c.push("x", ServiceConfig::bing_like(54), Design::DatasetA(d));
    }

    #[test]
    fn custom_designs_and_keep_raw_work() {
        let mut c = Campaign::new(Scenario::small(55));
        c.push(
            "custom",
            ServiceConfig::google_like(55),
            Design::custom(|sim| {
                sim.with(|w, net| {
                    w.schedule_query(
                        net,
                        SimDuration::from_millis(1),
                        cdnsim::QuerySpec {
                            client: 0,
                            keyword: 1,
                            fixed_fe: None,
                            instant_followup: false,
                        },
                    );
                });
            }),
        )
        .keep_raw = true;
        let report = c.execute_with_threads(2);
        let run = report.get("custom").unwrap();
        assert_eq!(run.queries.len(), 1);
        assert_eq!(run.raw.len(), 1);
        assert!(!run.raw[0].trace.is_empty());
        assert_eq!(run.tally.ok, 1);
    }

    #[test]
    fn stats_and_tsv_shapes() {
        let report = two_run_campaign(56).execute_with_threads(2);
        let table = report.stats_table();
        assert!(table.contains("speedup"));
        assert!(report.serial_ms() > 0.0);
        let tsv = report.to_tsv();
        let header_cols = tsv.lines().next().unwrap().split('\t').count();
        assert_eq!(header_cols, 14);
        let first_row = tsv.lines().find(|l| l.starts_with("bing\t")).unwrap();
        assert_eq!(first_row.split('\t').count(), header_cols);
        assert!(tsv.contains("# run=bing ok="));
    }
}
