//! Simulation driving and per-query processing.

use capture::{Classifier, Timeline};
use cdnsim::{CompletedQuery, ServiceWorld};
use inference::QueryParams;
use searchbe::keywords::KeywordClass;
use simcore::time::SimTime;
use tcpsim::Sim;

/// One fully processed query: measurement-side parameters plus simulator
/// ground truth, with the raw packet trace already discarded.
#[derive(Clone, Debug)]
pub struct ProcessedQuery {
    /// Query id.
    pub qid: u64,
    /// Issuing client.
    pub client: usize,
    /// Serving FE (`None` without split TCP).
    pub fe: Option<usize>,
    /// Serving BE.
    pub be: usize,
    /// Keyword id.
    pub keyword: u64,
    /// Keyword class.
    pub class: KeywordClass,
    /// When the query started (ms of virtual time).
    pub t_start_ms: f64,
    /// The measured parameters (from the client-side timeline).
    pub params: QueryParams,
    /// Nominal client↔server RTT from the path model, ms (the
    /// measurement-side estimate lives in `params.rtt_ms`).
    pub rtt_nominal_ms: f64,
    /// Nominal FE↔BE RTT, ms.
    pub rtt_fe_be_ms: f64,
    /// FE↔BE distance, miles.
    pub dist_fe_be_miles: f64,
    /// Ground truth: BE processing time, ms.
    pub proc_ms: f64,
    /// Ground truth: FE request overhead, ms.
    pub fe_overhead_ms: f64,
    /// Ground truth: fetch interval, ms (None on FE cache hits or
    /// without split TCP).
    pub true_fetch_ms: Option<f64>,
}

/// Converts a completed query into a processed record by extracting its
/// client-side timeline with `classifier`. Returns `None` for sessions
/// the classifier cannot decompose.
pub fn process(cq: &CompletedQuery, classifier: &Classifier) -> Option<ProcessedQuery> {
    let client_node = ServiceWorld::client_node(cq.client);
    let tl = Timeline::extract(&cq.trace, client_node, classifier)?;
    Some(ProcessedQuery {
        qid: cq.qid,
        client: cq.client,
        fe: cq.fe,
        be: cq.be,
        keyword: cq.keyword,
        class: cq.class,
        t_start_ms: cq.t_start.as_millis_f64(),
        params: QueryParams::from_timeline(&tl),
        rtt_nominal_ms: cq.rtt_client_fe_ms,
        rtt_fe_be_ms: cq.rtt_fe_be_ms,
        dist_fe_be_miles: cq.dist_fe_be_miles,
        proc_ms: cq.proc_ms,
        fe_overhead_ms: cq.fe_overhead_ms,
        true_fetch_ms: cq.true_fetch_ms(),
    })
}

/// Runs the simulation to quiescence, draining and processing completed
/// queries in time chunks (bounded memory regardless of campaign
/// length). Returns the processed queries in completion order, plus the
/// raw completions for callers that need traces (those are only the ones
/// from the final chunk — pass `keep_raw = true` to retain all).
pub fn run_collect(
    sim: &mut Sim<ServiceWorld>,
    classifier: &Classifier,
) -> Vec<ProcessedQuery> {
    run_collect_with(sim, classifier, |_| {})
}

/// [`run_collect`] with a callback that sees every raw completion before
/// its trace is dropped — used by harnesses that also need packet-level
/// views (Fig. 4) or alternative classifiers.
pub fn run_collect_with(
    sim: &mut Sim<ServiceWorld>,
    classifier: &Classifier,
    mut on_raw: impl FnMut(&CompletedQuery),
) -> Vec<ProcessedQuery> {
    let chunk = simcore::time::SimDuration::from_secs(60);
    let mut out = Vec::new();
    loop {
        let now = sim.net().now();
        sim.run_until(now + chunk);
        let done = sim.with(|w, _| w.drain_completed());
        for cq in &done {
            on_raw(cq);
            if let Some(pq) = process(cq, classifier) {
                out.push(pq);
            }
        }
        if sim.net().pending_events() == 0 {
            break;
        }
    }
    out
}

/// Like [`run_collect`] but only runs until `deadline`, for
/// warm-up phases.
pub fn run_until(sim: &mut Sim<ServiceWorld>, deadline: SimTime) {
    sim.run_until(deadline);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::Scenario;
    use cdnsim::QuerySpec;
    use simcore::time::SimDuration;

    #[test]
    fn processed_queries_carry_consistent_params() {
        let s = Scenario::small(5);
        let mut sim = s.google_sim();
        for c in 0..5 {
            sim.with(|w, net| {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1 + c as u64 * 500),
                    QuerySpec {
                        client: c,
                        keyword: c as u64,
                        fixed_fe: None,
                        instant_followup: false,
                    },
                );
            });
        }
        let out = run_collect(&mut sim, &Classifier::ByMarker);
        assert_eq!(out.len(), 5);
        for pq in &out {
            assert!(pq.params.is_consistent(0.5), "{:?}", pq.params);
            // The handshake RTT estimate should track the nominal path
            // RTT (jitter allows small deviation).
            assert!(
                (pq.params.rtt_ms - pq.rtt_nominal_ms).abs() < 8.0,
                "est {} vs nominal {}",
                pq.params.rtt_ms,
                pq.rtt_nominal_ms
            );
            // The fetch bracket must contain the true fetch time.
            let bounds = inference::FetchBounds::from_params(&pq.params);
            let truth = pq.true_fetch_ms.unwrap();
            assert!(
                bounds.contains(truth, 12.0),
                "bracket [{}, {}] vs truth {}",
                bounds.lower_ms,
                bounds.upper_ms,
                truth
            );
        }
    }

    #[test]
    fn raw_callback_sees_traces() {
        let s = Scenario::small(6);
        let mut sim = s.bing_sim();
        sim.with(|w, net| {
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 1,
                    fixed_fe: None,
                    instant_followup: false,
                },
            );
        });
        let mut raw_count = 0;
        let out = run_collect_with(&mut sim, &Classifier::ByMarker, |cq| {
            raw_count += 1;
            assert!(!cq.trace.is_empty());
        });
        assert_eq!(raw_count, 1);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn long_campaign_runs_in_bounded_memory() {
        // 3 clients × 20 repeats across 200 virtual seconds; the runner
        // must drain between chunks (we can't observe memory directly,
        // but we verify all queries complete across many chunks).
        let s = Scenario::small(7);
        let mut sim = s.google_sim();
        for c in 0..3 {
            for r in 0..20u64 {
                sim.with(|w, net| {
                    w.schedule_query(
                        net,
                        SimDuration::from_millis(1 + r * 10_000 + c as u64 * 100),
                        QuerySpec {
                            client: c,
                            keyword: r,
                            fixed_fe: None,
                            instant_followup: false,
                        },
                    );
                });
            }
        }
        let out = run_collect(&mut sim, &Classifier::ByMarker);
        assert_eq!(out.len(), 60);
    }
}
