//! Simulation driving and per-query processing.

use crate::sessions::SessionFeeder;
use crate::sink::{observe_outcome, QuerySink};
use capture::{Classifier, Timeline, TimelineError};
use cdnsim::{CompletedQuery, QueryOutcome, ServiceWorld};
use inference::{QueryParams, SessionTally};
use searchbe::keywords::KeywordClass;
use simcore::span;
use simcore::telemetry::MetricsRegistry;
use simcore::time::SimTime;
use tcpsim::Sim;

/// One fully processed query: measurement-side parameters plus simulator
/// ground truth, with the raw packet trace already discarded.
#[derive(Clone, Debug)]
pub struct ProcessedQuery {
    /// Query id.
    pub qid: u64,
    /// Issuing client.
    pub client: usize,
    /// Serving FE (`None` without split TCP).
    pub fe: Option<usize>,
    /// Serving BE.
    pub be: usize,
    /// Keyword id.
    pub keyword: u64,
    /// Keyword class.
    pub class: KeywordClass,
    /// When the query started (ms of virtual time).
    pub t_start_ms: f64,
    /// The measured parameters (from the client-side timeline).
    pub params: QueryParams,
    /// Nominal client↔server RTT from the path model, ms (the
    /// measurement-side estimate lives in `params.rtt_ms`).
    pub rtt_nominal_ms: f64,
    /// Nominal FE↔BE RTT, ms.
    pub rtt_fe_be_ms: f64,
    /// FE↔BE distance, miles.
    pub dist_fe_be_miles: f64,
    /// Ground truth: BE processing time, ms.
    pub proc_ms: f64,
    /// Ground truth: FE request overhead, ms.
    pub fe_overhead_ms: f64,
    /// Ground truth: fetch interval, ms (None on FE cache hits or
    /// without split TCP).
    pub true_fetch_ms: Option<f64>,
    /// How the query ended (clean, degraded, retried, timed out).
    pub outcome: QueryOutcome,
}

/// Converts a completed query into a processed record by extracting its
/// client-side timeline with `classifier`. Fails with the extraction
/// error for sessions the classifier cannot decompose — callers decide
/// whether to skip-and-count or propagate.
pub fn process(
    cq: &CompletedQuery,
    classifier: &Classifier,
) -> Result<ProcessedQuery, TimelineError> {
    if !cq.traced {
        return Err(TimelineError::TracingDisabled);
    }
    let client_node = ServiceWorld::client_node(cq.client);
    let tl = Timeline::extract(&cq.trace, client_node, classifier)?;
    Ok(ProcessedQuery {
        qid: cq.qid,
        client: cq.client,
        fe: cq.fe,
        be: cq.be,
        keyword: cq.keyword,
        class: cq.class,
        t_start_ms: cq.t_start.as_millis_f64(),
        params: QueryParams::from_timeline(&tl),
        rtt_nominal_ms: cq.rtt_client_fe_ms,
        rtt_fe_be_ms: cq.rtt_fe_be_ms,
        dist_fe_be_miles: cq.dist_fe_be_miles,
        proc_ms: cq.proc_ms,
        fe_overhead_ms: cq.fe_overhead_ms,
        true_fetch_ms: cq.true_fetch_ms(),
        outcome: cq.outcome,
    })
}

/// Runs the simulation to quiescence, draining and processing completed
/// queries in time chunks (bounded memory regardless of campaign
/// length). Returns the processed queries in completion order, plus the
/// raw completions for callers that need traces (those are only the ones
/// from the final chunk — pass `keep_raw = true` to retain all).
pub fn run_collect(sim: &mut Sim<ServiceWorld>, classifier: &Classifier) -> Vec<ProcessedQuery> {
    run_collect_with(sim, classifier, |_| {})
}

/// [`run_collect`] that also returns the robustness tally: outcome
/// counts plus how many sessions were skipped because their timeline
/// could not be extracted. Fault-injection harnesses report this next to
/// their inference results so excluded data is visible, not silent.
pub fn run_collect_tally(
    sim: &mut Sim<ServiceWorld>,
    classifier: &Classifier,
) -> (Vec<ProcessedQuery>, SessionTally) {
    let run = run_stream(
        sim,
        classifier,
        crate::sink::FoldSink::new(Vec::new(), |v: &mut Vec<ProcessedQuery>, pq| {
            v.push(pq.clone())
        }),
    );
    (run.output, run.tally)
}

/// [`run_collect`] with a callback that sees every raw completion before
/// its trace is dropped — used by harnesses that also need packet-level
/// views (Fig. 4) or alternative classifiers.
pub fn run_collect_with(
    sim: &mut Sim<ServiceWorld>,
    classifier: &Classifier,
    on_raw: impl FnMut(&CompletedQuery),
) -> Vec<ProcessedQuery> {
    struct Legacy<F> {
        out: Vec<ProcessedQuery>,
        on_raw: F,
    }
    impl<F: FnMut(&CompletedQuery)> QuerySink for Legacy<F> {
        type Output = Vec<ProcessedQuery>;
        fn wants_raw(&self) -> bool {
            true
        }
        fn on_query(&mut self, pq: &ProcessedQuery) {
            self.out.push(pq.clone());
        }
        fn on_raw(&mut self, cq: CompletedQuery) {
            (self.on_raw)(&cq);
        }
        fn finish(self) -> Vec<ProcessedQuery> {
            self.out
        }
    }
    run_stream(
        sim,
        classifier,
        Legacy {
            out: Vec::new(),
            on_raw,
        },
    )
    .output
}

/// What [`run_stream`] produces next to the sink's own output.
#[derive(Clone, Debug)]
pub struct StreamRun<R> {
    /// The sink's reduction.
    pub output: R,
    /// Outcome and skip accounting for the run.
    pub tally: SessionTally,
    /// Largest [`QuerySink::retained_bytes`] observed across drain
    /// chunks — the memory the sink actually held onto at its peak.
    pub peak_retained_bytes: usize,
    /// High-water mark of the simulator's pending-event count — the
    /// session-slab memory proxy: with a [`SessionFeeder`] this tracks
    /// O(live sessions), not O(total queries).
    pub peak_pending_events: usize,
    /// The run's telemetry: the transport (`tcpsim.*`) and service
    /// (`cdnsim.*`) registries harvested at quiescence, merged with the
    /// runner's own classification counters (`capture.*`) and gauges
    /// (`emulator.*`).
    pub metrics: MetricsRegistry,
}

/// The streaming counterpart of [`run_collect`]: drives the simulation
/// to quiescence in time chunks and folds every completion into `sink`
/// the moment it drains — no `Vec<ProcessedQuery>` buffer, no trace
/// clone. Raw completions are moved into the sink only when it
/// [`wants_raw`](QuerySink::wants_raw); otherwise each trace is dropped
/// as soon as its timeline is extracted.
pub fn run_stream<S: QuerySink>(
    sim: &mut Sim<ServiceWorld>,
    classifier: &Classifier,
    sink: S,
) -> StreamRun<S::Output> {
    run_stream_fed(sim, classifier, sink, None)
}

/// [`run_stream`] with an optional [`SessionFeeder`]: sessions are
/// materialised one time chunk ahead of the simulation clock, so the
/// event queue holds only live sessions — the footprint of a
/// 10^6-session campaign is that of its busiest chunk, not of the whole
/// schedule. Without a feeder this is exactly [`run_stream`].
pub fn run_stream_fed<S: QuerySink>(
    sim: &mut Sim<ServiceWorld>,
    classifier: &Classifier,
    mut sink: S,
    mut feeder: Option<&mut SessionFeeder>,
) -> StreamRun<S::Output> {
    let chunk = simcore::time::SimDuration::from_secs(60);
    let fed = feeder.is_some();
    let mut tally = SessionTally::default();
    let mut processed = 0usize;
    let mut peak = 0usize;
    let mut peak_pending = 0usize;
    // The runner's own registry inherits the gate of the simulator it
    // drives, so a per-run override set on the Net covers the whole
    // metrics document.
    let mut metrics = MetricsRegistry::with_enabled(sim.net().metrics().is_enabled());
    span!(
        metrics,
        "runner.drive_wall_ms",
        loop {
            let now = sim.net().now();
            // Chunked stepping with a skip: `run_until` leaves `now` at
            // the last processed event, so if the earliest pending
            // event lies beyond the chunk (a hedge timer, fault window,
            // or a session arriving after a lull), fixed-size chunks
            // would never reach it and this loop would spin forever.
            let mut deadline = now + chunk;
            let mut next_signal = sim.net().next_event_time();
            if let Some(f) = feeder.as_deref_mut() {
                next_signal = match (next_signal, f.next_start()) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            if let Some(t) = next_signal {
                if t > deadline {
                    deadline = t;
                }
            }
            // Materialise this chunk's sessions before driving it. The
            // feeder's draw order depends only on session order, never
            // on chunk boundaries, so the schedule is byte-identical at
            // any thread count or chunk size.
            if let Some(f) = feeder.as_deref_mut() {
                f.feed(sim, deadline);
                peak_pending = peak_pending.max(sim.net().pending_events());
            }
            sim.run_until(deadline);
            let done = sim.with(|w, _| w.drain_completed());
            for cq in done {
                observe_outcome(&mut tally, cq.outcome);
                let pq = match process(&cq, classifier) {
                    Ok(pq) => {
                        metrics.inc("capture.timeline_ok");
                        Some(pq)
                    }
                    Err(e) => {
                        metrics.inc(e.metric_name());
                        None
                    }
                };
                if sink.wants_raw() {
                    sink.on_raw(cq);
                }
                if let Some(pq) = pq {
                    sink.on_query(&pq);
                    processed += 1;
                }
            }
            peak = peak.max(sink.retained_bytes());
            if sim.net().pending_events() == 0 && feeder.as_deref().is_none_or(|f| f.exhausted()) {
                break;
            }
        }
    );
    tally.skipped = tally.total() - processed;
    // Harvest the component registries at quiescence. Sink memory is a
    // deterministic gauge: buffer growth depends only on the simulated
    // completion stream.
    metrics.set_gauge("emulator.sink_retained_bytes", peak as f64);
    if fed {
        // Only meaningful (and only emitted) in fed mode, so unfed
        // metrics documents are unchanged.
        metrics.set_gauge("emulator.pending_events_hiwater", peak_pending as f64);
    }
    let net_metrics = sim.net().take_metrics();
    metrics.merge(&net_metrics);
    let world_metrics = sim.with(|w, _| w.take_metrics());
    metrics.merge(&world_metrics);
    StreamRun {
        output: sink.finish(),
        tally,
        peak_retained_bytes: peak,
        peak_pending_events: peak_pending,
        metrics,
    }
}

/// Like [`run_collect`] but only runs until `deadline`, for
/// warm-up phases.
pub fn run_until(sim: &mut Sim<ServiceWorld>, deadline: SimTime) {
    sim.run_until(deadline);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::Scenario;
    use cdnsim::QuerySpec;
    use simcore::time::SimDuration;

    #[test]
    fn processed_queries_carry_consistent_params() {
        let s = Scenario::small(5);
        let mut sim = s.google_sim();
        for c in 0..5 {
            sim.with(|w, net| {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1 + c as u64 * 500),
                    QuerySpec {
                        client: c,
                        keyword: c as u64,
                        fixed_fe: None,
                        instant_followup: false,
                    },
                );
            });
        }
        let out = run_collect(&mut sim, &Classifier::ByMarker);
        assert_eq!(out.len(), 5);
        for pq in &out {
            assert!(pq.params.is_consistent(0.5), "{:?}", pq.params);
            // The handshake RTT estimate should track the nominal path
            // RTT (jitter allows small deviation).
            assert!(
                (pq.params.rtt_ms - pq.rtt_nominal_ms).abs() < 8.0,
                "est {} vs nominal {}",
                pq.params.rtt_ms,
                pq.rtt_nominal_ms
            );
            // The fetch bracket must contain the true fetch time.
            let bounds = inference::FetchBounds::from_params(&pq.params);
            let truth = pq.true_fetch_ms.unwrap();
            assert!(
                bounds.contains(truth, 12.0),
                "bracket [{}, {}] vs truth {}",
                bounds.lower_ms,
                bounds.upper_ms,
                truth
            );
        }
    }

    #[test]
    fn raw_callback_sees_traces() {
        let s = Scenario::small(6);
        let mut sim = s.bing_sim();
        sim.with(|w, net| {
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 1,
                    fixed_fe: None,
                    instant_followup: false,
                },
            );
        });
        let mut raw_count = 0;
        let out = run_collect_with(&mut sim, &Classifier::ByMarker, |cq| {
            raw_count += 1;
            assert!(!cq.trace.is_empty());
        });
        assert_eq!(raw_count, 1);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn tally_counts_degraded_sessions_as_skipped() {
        // Every BE site dark for the whole run: all queries degrade, and
        // their stub responses carry no dynamic content, so timeline
        // extraction must skip them — visibly, in the tally.
        let s = Scenario::small(8);
        let mut plan = nettopo::FaultPlan::default();
        for be in 0..64 {
            plan = plan.be_outage(be, SimTime::ZERO, SimTime::from_millis(600_000));
        }
        let cfg = cdnsim::ServiceConfig::google_like(8)
            .with_faults(plan)
            .with_fe_fetch_deadline(SimDuration::from_millis(800));
        let mut sim = s.build_sim(cfg);
        for c in 0..4 {
            sim.with(|w, net| {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1 + c as u64 * 300),
                    QuerySpec {
                        client: c,
                        keyword: c as u64,
                        fixed_fe: None,
                        instant_followup: false,
                    },
                );
            });
        }
        let (out, tally) = run_collect_tally(&mut sim, &Classifier::ByMarker);
        assert_eq!(tally.degraded, 4);
        assert_eq!(tally.total(), 4);
        assert_eq!(tally.skipped, 4, "degraded stubs must not be inferable");
        assert!(out.is_empty());
        assert_eq!(tally.usable_fraction(), 0.0);
    }

    #[test]
    fn untraced_queries_yield_a_typed_error_not_an_empty_timeline() {
        // Tracing off is a harness misconfiguration, not a session with
        // no packets: processing must fail with the dedicated variant
        // (and the tally must count the query as skipped), never succeed
        // against a vacuously empty trace.
        let s = Scenario::small(4);
        let mut sim = s.google_sim();
        sim.net().trace_mut().set_enabled(false);
        sim.with(|w, net| {
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 1,
                    fixed_fe: None,
                    instant_followup: false,
                },
            );
        });
        let mut raw = Vec::new();
        let (out, tally) = {
            let mut tally = inference::SessionTally::default();
            let out = run_collect_with(&mut sim, &Classifier::ByMarker, |cq| {
                tally.ok += 1;
                raw.push(cq.clone());
            });
            tally.skipped = tally.total() - out.len();
            (out, tally)
        };
        assert!(out.is_empty());
        assert_eq!(tally.skipped, 1);
        assert_eq!(raw.len(), 1);
        assert!(!raw[0].traced);
        assert!(raw[0].trace.is_empty());
        assert_eq!(
            process(&raw[0], &Classifier::ByMarker).unwrap_err(),
            TimelineError::TracingDisabled
        );
    }

    #[test]
    fn tally_is_clean_without_faults() {
        let s = Scenario::small(9);
        let mut sim = s.google_sim();
        for c in 0..3 {
            sim.with(|w, net| {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1 + c as u64 * 400),
                    QuerySpec {
                        client: c,
                        keyword: c as u64,
                        fixed_fe: None,
                        instant_followup: false,
                    },
                );
            });
        }
        let (out, tally) = run_collect_tally(&mut sim, &Classifier::ByMarker);
        assert_eq!(out.len(), 3);
        assert_eq!(tally.ok, 3);
        assert_eq!(tally.skipped, 0);
        assert_eq!(tally.usable_fraction(), 1.0);
        assert!(out.iter().all(|pq| pq.outcome == QueryOutcome::Ok));
    }

    #[test]
    fn long_campaign_runs_in_bounded_memory() {
        // 3 clients × 20 repeats across 200 virtual seconds; the runner
        // must drain between chunks (we can't observe memory directly,
        // but we verify all queries complete across many chunks).
        let s = Scenario::small(7);
        let mut sim = s.google_sim();
        for c in 0..3 {
            for r in 0..20u64 {
                sim.with(|w, net| {
                    w.schedule_query(
                        net,
                        SimDuration::from_millis(1 + r * 10_000 + c as u64 * 100),
                        QuerySpec {
                            client: c,
                            keyword: r,
                            fixed_fe: None,
                            instant_followup: false,
                        },
                    );
                });
            }
        }
        let out = run_collect(&mut sim, &Classifier::ByMarker);
        assert_eq!(out.len(), 60);
    }
}
