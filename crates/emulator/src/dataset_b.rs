//! Dataset B: fixed-FE experiments.
//!
//! "In the second set, we fix one FE server (of Bing or Google
//! respectively) at a time, and launch queries from all measurement
//! nodes to this server." This design decouples the client↔FE RTT from
//! the FE identity — the key to Fig. 5, where 720 repeated queries per
//! node against one FE expose how `Tstatic`/`Tdynamic`/`Tdelta` depend
//! on RTT alone.

use crate::campaign::{Campaign, Design};
use crate::runner::ProcessedQuery;
use crate::scenarios::Scenario;
use capture::Classifier;
use cdnsim::{CompletedQuery, QuerySpec, ServiceConfig, ServiceWorld};
use simcore::time::SimDuration;
use tcpsim::Sim;

/// Dataset B configuration.
#[derive(Clone, Debug)]
pub struct DatasetB {
    /// The fixed FE under test.
    pub fe: usize,
    /// Queries per vantage point (paper: 720).
    pub repeats: u64,
    /// Inter-query spacing.
    pub spacing: SimDuration,
    /// The (single) keyword used by all queries.
    pub keyword: u64,
    /// Persistent FE↔BE connections to pre-warm before measuring.
    pub prewarm_conns: usize,
}

impl DatasetB {
    /// A standard configuration against a given FE.
    pub fn against(fe: usize) -> DatasetB {
        DatasetB {
            fe,
            repeats: 24,
            spacing: SimDuration::from_secs(10),
            keyword: 0,
            prewarm_conns: 4,
        }
    }

    /// Sets the repeat count (the paper used 720).
    pub fn with_repeats(mut self, repeats: u64) -> DatasetB {
        self.repeats = repeats;
        self
    }

    /// Schedules the design: pre-warms the FE's BE connections, then has
    /// every client query the fixed FE `repeats` times.
    pub fn schedule(&self, sim: &mut Sim<ServiceWorld>) {
        let fe = self.fe;
        let repeats = self.repeats;
        let spacing = self.spacing;
        let keyword = self.keyword;
        let prewarm = self.prewarm_conns;
        sim.with(|w, net| {
            let be = w.be_of_fe(fe);
            if prewarm > 0 {
                w.prewarm(net, fe, be, prewarm);
            }
            let n_clients = w.clients().len();
            for client in 0..n_clients {
                let stagger = SimDuration::from_millis(3_000 + (client as u64 * 41) % 2_000);
                for r in 0..repeats {
                    w.schedule_query(
                        net,
                        stagger + spacing * r,
                        QuerySpec {
                            client,
                            keyword,
                            fixed_fe: Some(fe),
                            instant_followup: false,
                        },
                    );
                }
            }
        });
    }

    /// Runs the design as a single-run campaign and returns the
    /// processed queries.
    pub fn run(
        &self,
        scenario: &Scenario,
        cfg: ServiceConfig,
        classifier: &Classifier,
    ) -> Vec<ProcessedQuery> {
        let mut campaign = Campaign::new(scenario.clone());
        campaign
            .push("dataset-b", cfg, Design::DatasetB(self.clone()))
            .classifier = classifier.clone();
        let mut report = campaign.execute_with_threads(1);
        report.runs.remove(0).queries
    }

    /// Runs the design, also handing every raw completion (with its
    /// packet trace) to `on_raw` — the Fig. 4 harness uses this to build
    /// packet-event timelines.
    pub fn run_with_raw(
        &self,
        scenario: &Scenario,
        cfg: ServiceConfig,
        classifier: &Classifier,
        mut on_raw: impl FnMut(&CompletedQuery),
    ) -> Vec<ProcessedQuery> {
        let mut campaign = Campaign::new(scenario.clone());
        let descriptor = campaign.push("dataset-b", cfg, Design::DatasetB(self.clone()));
        descriptor.classifier = classifier.clone();
        descriptor.keep_raw = true;
        let mut report = campaign.execute_with_threads(1);
        let run = report.runs.remove(0);
        for cq in &run.raw {
            on_raw(cq);
        }
        run.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_hit_the_fixed_fe() {
        let s = Scenario::small(21);
        let mut sim = s.google_sim();
        let fe = sim.with(|w, _| w.default_fe(3));
        drop(sim);
        let d = DatasetB {
            fe,
            repeats: 2,
            spacing: SimDuration::from_secs(3),
            keyword: 7,
            prewarm_conns: 2,
        };
        let out = d.run(&s, ServiceConfig::google_like(21), &Classifier::ByMarker);
        assert_eq!(out.len(), s.vantage_count() * 2);
        assert!(out.iter().all(|q| q.fe == Some(fe)));
        assert!(out.iter().all(|q| q.keyword == 7));
    }

    #[test]
    fn rtt_spread_across_vantages_is_wide() {
        // Fixing one FE makes distant vantages see large RTT — the
        // variation Fig. 5's x-axis needs.
        let s = Scenario::small(22);
        let d = DatasetB::against(0).with_repeats(1);
        let out = d.run(&s, ServiceConfig::google_like(22), &Classifier::ByMarker);
        let min = out.iter().map(|q| q.params.rtt_ms).fold(f64::MAX, f64::min);
        let max = out.iter().map(|q| q.params.rtt_ms).fold(0.0, f64::max);
        assert!(max > min + 50.0, "rtt spread [{min}, {max}] too narrow");
    }

    #[test]
    fn raw_callback_fires_per_query() {
        let s = Scenario::small(23);
        let d = DatasetB::against(1).with_repeats(1);
        let mut raw = 0;
        let out = d.run_with_raw(
            &s,
            ServiceConfig::bing_like(23),
            &Classifier::ByMarker,
            |_| raw += 1,
        );
        assert_eq!(raw, out.len());
    }
}
