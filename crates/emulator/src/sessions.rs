//! Session-slab workloads: million-session campaigns in O(live
//! sessions) memory.
//!
//! [`DatasetA`](crate::dataset_a::DatasetA)/[`DatasetB`](crate::dataset_b::DatasetB)
//! designs schedule every query up front, so a campaign's footprint
//! grows with *total* queries. A [`SessionWorkload`] instead describes
//! the workload generatively — session count, arrival rate, and a
//! [`PopularityModel`] for keyword draws — and a [`SessionFeeder`]
//! materialises sessions lazily, one time chunk at a time, as the
//! runner drains completions. At any instant the event queue holds only
//! the sessions that are actually live, so 10^6 sessions run in the
//! same peak memory as 10^5 (the `exp_popularity` memory contract).
//!
//! Determinism: the feeder is a pure iterator over two named RNG
//! streams (`emulator/sessions` for arrivals, `emulator/popularity` for
//! churn). Each session's draws — client, keywords, next inter-arrival
//! gap — form one contiguous block in stream order, so the generated
//! schedule is independent of how the runner batches `feed` calls, and
//! byte-identical at any `FECDN_THREADS`.

use cdnsim::{QuerySpec, ServiceWorld};
use simcore::dist::{PopularityModel, PopularityProcess};
use simcore::rng::Rng;
use simcore::time::{SimDuration, SimTime};
use tcpsim::Sim;

/// A generative session workload: `sessions` client sessions arriving
/// as a (diurnally modulated) Poisson process, each issuing
/// `queries_per_session` keyword draws from a [`PopularityModel`]
/// spaced by `think`.
#[derive(Clone, Debug)]
pub struct SessionWorkload {
    /// Total sessions to generate.
    pub sessions: u64,
    /// Queries per session (drawn at session start, spaced by `think`).
    pub queries_per_session: u32,
    /// Think time between a session's consecutive queries.
    pub think: SimDuration,
    /// Mean inter-session arrival gap (exponentially distributed; the
    /// workload model's diurnal wave modulates the instantaneous rate).
    pub mean_gap: SimDuration,
    /// Virtual-time offset of the first session.
    pub start: SimDuration,
    /// Keyword popularity model (static Zipf by default; churn, diurnal
    /// waves and flash crowds compose on top).
    pub popularity: PopularityModel,
    /// Pin every query to this FE (None = per-client DNS default).
    pub fixed_fe: Option<usize>,
}

impl SessionWorkload {
    /// A workload of `sessions` single-query sessions under a static
    /// Zipf(0.9) popularity model, arriving every 50 ms on average.
    pub fn new(sessions: u64) -> SessionWorkload {
        SessionWorkload {
            sessions,
            queries_per_session: 1,
            think: SimDuration::from_secs(2),
            mean_gap: SimDuration::from_millis(50),
            start: SimDuration::from_millis(1),
            popularity: PopularityModel::static_zipf(0.9),
            fixed_fe: None,
        }
    }

    /// Sets queries per session.
    pub fn with_queries_per_session(mut self, n: u32) -> SessionWorkload {
        assert!(n > 0);
        self.queries_per_session = n;
        self
    }

    /// Sets the think time between a session's queries.
    pub fn with_think(mut self, think: SimDuration) -> SessionWorkload {
        self.think = think;
        self
    }

    /// Sets the mean inter-session arrival gap.
    pub fn with_mean_gap(mut self, gap: SimDuration) -> SessionWorkload {
        assert!(!gap.is_zero());
        self.mean_gap = gap;
        self
    }

    /// Sets the keyword popularity model.
    pub fn with_popularity(mut self, model: PopularityModel) -> SessionWorkload {
        self.popularity = model;
        self
    }

    /// Pins every query to one FE (cache experiments need a single
    /// cache to observe).
    pub fn with_fixed_fe(mut self, fe: usize) -> SessionWorkload {
        self.fixed_fe = Some(fe);
        self
    }

    /// Total queries the workload will generate.
    pub fn total_queries(&self) -> u64 {
        self.sessions * self.queries_per_session as u64
    }
}

/// One materialised session: start instant, issuing client, and the
/// keyword sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionPlan {
    /// Virtual start time.
    pub start: SimTime,
    /// Issuing client (vantage index).
    pub client: usize,
    /// Keywords, one per query, `think`-spaced from `start`.
    pub keywords: Vec<u64>,
}

/// Lazily materialises a [`SessionWorkload`] into scheduled queries.
/// Pure iterator over named RNG streams — see the module docs for the
/// determinism contract.
#[derive(Debug)]
pub struct SessionFeeder {
    w: SessionWorkload,
    rng: Rng,
    pop: PopularityProcess,
    n_clients: usize,
    emitted: u64,
    next_start: Option<SimTime>,
}

impl SessionFeeder {
    /// Builds a feeder for `w` against a world with `n_clients` vantages
    /// and `catalog` keywords. `seed` is the run seed; the feeder's two
    /// RNG streams are derived from it by name, so reordering runs in a
    /// campaign never changes a feeder's draw sequence.
    pub fn new(w: SessionWorkload, seed: u64, n_clients: usize, catalog: usize) -> SessionFeeder {
        assert!(n_clients > 0 && catalog > 0);
        let pop = PopularityProcess::new(
            catalog,
            w.popularity.clone(),
            Rng::from_seed_and_name(seed, "emulator/popularity"),
        );
        let next_start = if w.sessions > 0 {
            SimTime::ZERO.checked_add(w.start)
        } else {
            None
        };
        SessionFeeder {
            w,
            rng: Rng::from_seed_and_name(seed, "emulator/sessions"),
            pop,
            n_clients,
            emitted: 0,
            next_start,
        }
    }

    /// The workload being materialised.
    pub fn workload(&self) -> &SessionWorkload {
        &self.w
    }

    /// Sessions materialised so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Start instant of the next session, or `None` when exhausted.
    pub fn next_start(&self) -> Option<SimTime> {
        self.next_start
    }

    /// True when every session has been materialised.
    pub fn exhausted(&self) -> bool {
        self.next_start.is_none()
    }

    /// Materialises the next session. All its draws happen here, in one
    /// contiguous block of the feeder's streams: client, keywords, then
    /// the gap to the following session.
    pub fn next_session(&mut self) -> Option<SessionPlan> {
        let start = self.next_start?;
        let client = self.rng.next_below(self.n_clients as u64) as usize;
        let keywords: Vec<u64> = (0..self.w.queries_per_session)
            .map(|_| self.pop.sample(start, &mut self.rng))
            .collect();
        self.emitted += 1;
        self.next_start = if self.emitted >= self.w.sessions {
            None
        } else {
            // Exponential inter-arrival gap; the diurnal wave modulates
            // the instantaneous rate (busier hours → shorter gaps).
            let rate = self.w.popularity.rate_factor(start).max(1e-6);
            let mean_ms = self.w.mean_gap.as_millis_f64() / rate;
            let gap = SimDuration::from_millis_f64(-mean_ms * self.rng.next_f64_open().ln())
                .max(SimDuration::from_nanos(1));
            start.checked_add(gap)
        };
        Some(SessionPlan {
            start,
            client,
            keywords,
        })
    }

    /// Schedules every session starting at or before `upto` into the
    /// simulation. Returns how many queries were scheduled. Batching is
    /// irrelevant to the outcome: `feed(a); feed(b)` schedules exactly
    /// what `feed(b)` would, for any `a <= b`.
    pub fn feed(&mut self, sim: &mut Sim<ServiceWorld>, upto: SimTime) -> u64 {
        let mut scheduled = 0u64;
        while self.next_start.is_some_and(|t| t <= upto) {
            let plan = self.next_session().expect("next_start was Some");
            let fixed_fe = self.w.fixed_fe;
            let think = self.w.think;
            sim.with(|w, net| {
                let now = net.now();
                for (i, &kw) in plan.keywords.iter().enumerate() {
                    let at = plan
                        .start
                        .checked_add(think.saturating_mul(i as u64))
                        .unwrap_or(SimTime::MAX);
                    w.schedule_query(
                        net,
                        at.saturating_since(now),
                        QuerySpec {
                            client: plan.client,
                            keyword: kw,
                            fixed_fe,
                            instant_followup: false,
                        },
                    );
                }
            });
            scheduled += plan.keywords.len() as u64;
        }
        scheduled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(n: u64) -> SessionWorkload {
        SessionWorkload::new(n).with_queries_per_session(2)
    }

    #[test]
    fn feeder_is_a_pure_iterator_over_named_streams() {
        let mut a = SessionFeeder::new(workload(200), 42, 16, 500);
        let mut b = SessionFeeder::new(workload(200), 42, 16, 500);
        let pa: Vec<SessionPlan> = std::iter::from_fn(|| a.next_session()).collect();
        let pb: Vec<SessionPlan> = std::iter::from_fn(|| b.next_session()).collect();
        assert_eq!(pa.len(), 200);
        assert_eq!(pa, pb);
        assert!(a.exhausted() && b.exhausted());
        // Strictly increasing arrival order; draws in range.
        for w in pa.windows(2) {
            assert!(w[1].start > w[0].start);
        }
        assert!(pa.iter().all(|p| p.client < 16));
        assert!(pa.iter().flat_map(|p| &p.keywords).all(|&k| k < 500));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SessionFeeder::new(workload(50), 1, 16, 500);
        let mut b = SessionFeeder::new(workload(50), 2, 16, 500);
        let pa: Vec<SessionPlan> = std::iter::from_fn(|| a.next_session()).collect();
        let pb: Vec<SessionPlan> = std::iter::from_fn(|| b.next_session()).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn zero_sessions_is_immediately_exhausted() {
        let mut f = SessionFeeder::new(SessionWorkload::new(0), 7, 4, 100);
        assert!(f.exhausted());
        assert!(f.next_session().is_none());
        assert_eq!(SessionWorkload::new(0).total_queries(), 0);
    }

    #[test]
    fn workload_accounting() {
        let w = SessionWorkload::new(1000).with_queries_per_session(3);
        assert_eq!(w.total_queries(), 3000);
    }
}
