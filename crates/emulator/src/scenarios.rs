//! Shared experiment setup.
//!
//! Both services must be measured from the *same* vantage population
//! with the *same* keyword corpus for the comparison to be paired — the
//! paper submits "the same search queries to both Bing and Google search
//! engines" from the same PlanetLab nodes. [`Scenario`] pins that shared
//! context; per-service worlds are derived from it.

use cdnsim::{ServiceConfig, ServiceWorld, WorldSpec};
use nettopo::vantage::{planetlab_like, Vantage, VantageConfig};
use searchbe::keywords::KeywordCorpus;
use tcpsim::Sim;

/// The shared context of one measurement campaign.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Campaign seed (drives vantage placement, corpus generation and,
    /// through the service configs, every stochastic model).
    pub seed: u64,
    /// The vantage-point population.
    pub vantages: Vec<Vantage>,
    /// The keyword corpus.
    pub corpus: KeywordCorpus,
}

impl Scenario {
    /// The paper-scale default: ~230 vantage points, a 40,000-keyword
    /// corpus.
    pub fn paper_scale(seed: u64) -> Scenario {
        Scenario::with_size(seed, 230, 40_000)
    }

    /// A small scenario for tests and quick benches.
    pub fn small(seed: u64) -> Scenario {
        Scenario::with_size(seed, 24, 500)
    }

    /// Explicit sizing.
    pub fn with_size(seed: u64, vantage_count: usize, corpus_size: usize) -> Scenario {
        let vantages = planetlab_like(
            seed,
            &VantageConfig {
                count: vantage_count,
                ..VantageConfig::default()
            },
        );
        let corpus = KeywordCorpus::generate(seed, corpus_size, 0.5);
        Scenario {
            seed,
            vantages,
            corpus,
        }
    }

    /// Number of vantage points.
    pub fn vantage_count(&self) -> usize {
        self.vantages.len()
    }

    /// Builds a ready-to-run simulator for a service config, with packet
    /// tracing enabled. Any fault plan attached to the config is
    /// installed into the network (a no-op for the default empty plan).
    pub fn build_sim(&self, cfg: ServiceConfig) -> Sim<ServiceWorld> {
        // The historical world-seed derivation; campaign runs derive
        // per-run seeds via `spec` instead.
        self.spec(cfg, self.seed ^ 0x5eed_cafe).build()
    }

    /// The world descriptor for `cfg` under this scenario's shared
    /// vantage/corpus context, with an explicit network-side seed.
    /// Campaign descriptors construct their shard worlds through this.
    pub fn spec(&self, cfg: ServiceConfig, world_seed: u64) -> WorldSpec {
        WorldSpec {
            cfg,
            vantages: self.vantages.clone(),
            corpus: self.corpus.clone(),
            world_seed,
            trace: true,
        }
    }

    /// Convenience: the Bing-like simulator.
    pub fn bing_sim(&self) -> Sim<ServiceWorld> {
        self.build_sim(ServiceConfig::bing_like(self.seed))
    }

    /// Convenience: the Google-like simulator.
    pub fn google_sim(&self) -> Sim<ServiceWorld> {
        self.build_sim(ServiceConfig::google_like(self.seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_dimensions() {
        let s = Scenario::paper_scale(1);
        assert_eq!(s.vantage_count(), 230);
        assert_eq!(s.corpus.len(), 40_000);
    }

    #[test]
    fn both_services_share_the_same_vantages() {
        let s = Scenario::small(2);
        let mut bing = s.bing_sim();
        let mut google = s.google_sim();
        let b0 = bing.with(|w, _| w.clients()[0].pt);
        let g0 = google.with(|w, _| w.clients()[0].pt);
        assert_eq!(b0, g0);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Scenario::small(3);
        let b = Scenario::small(3);
        assert_eq!(a.vantages[5].pt, b.vantages[5].pt);
        assert_eq!(a.corpus.get(17).text, b.corpus.get(17).text);
    }
}
