//! Test-runner configuration, per-case RNG and failure type.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single property case failed.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed-assertion error.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case random stream: FNV-1a over the test path
/// selects the stream, SplitMix64 seeded by (stream, case) generates it.
/// The same (test, case) pair always yields the same samples, so any
/// failure is reproducible by construction.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// The stream for case number `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> TestRng {
        let mut h = FNV_OFFSET;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        let mut seed = h ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d);
        // Scramble so adjacent cases land in unrelated regions.
        let s0 = splitmix64(&mut seed);
        TestRng { state: s0 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply-shift (Lemire, without the rejection step —
        // the tiny modulo bias is irrelevant for test-case generation).
        let wide = u128::from(self.next_u64()) * u128::from(bound);
        (wide >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case("mod::test", 7);
        let mut b = TestRng::for_case("mod::test", 7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_diverge() {
        let mut a = TestRng::for_case("mod::test_a", 0);
        let mut b = TestRng::for_case("mod::test_b", 0);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn bounds_respected() {
        let mut r = TestRng::for_case("bounds", 0);
        for _ in 0..1_000 {
            assert!(r.next_below(17) < 17);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
