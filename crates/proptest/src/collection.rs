//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Vec<S::Value>` with a length drawn from a range.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: std::ops::Range<usize>,
}

/// A `Vec` strategy: each case draws a length from `len`, then samples
/// that many elements.
pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty vec length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
