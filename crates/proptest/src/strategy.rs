//! Value-generation strategies.
//!
//! A [`Strategy`] knows how to sample one value from a [`TestRng`].
//! Ranges, string regexes (a small subset), tuples and `Vec`s are
//! supported — the shapes the workspace's property tests use.

use crate::test_runner::TestRng;

/// Something that can generate values for a property test.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.next_below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(rng.next_below(span as u64) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i32 => u32, i64 => u64, isize => usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// String strategy from a regex-subset pattern, e.g. `"[a-z]{1,12}"`.
///
/// Supported syntax: literal characters, character classes with ranges
/// (`[a-z0-9_]`), and repetition of the previous atom via `{m}`,
/// `{m,n}`, `?`, `+` or `*` (the open-ended forms cap at 8 repeats).
/// Anything else panics with the offending pattern, which is the right
/// failure mode for a test-only shim.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_regex(self, rng)
    }
}

#[derive(Debug)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

fn parse_atoms(pattern: &str) -> Vec<(Atom, u32, u32)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms: Vec<(Atom, u32, u32)> = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == ']')
                    .unwrap_or_else(|| panic!("unclosed '[' in regex strategy {pattern:?}"))
                    + i;
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                assert!(
                    !ranges.is_empty(),
                    "empty class in regex strategy {pattern:?}"
                );
                i = close + 1;
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                assert!(
                    i < chars.len(),
                    "dangling escape in regex strategy {pattern:?}"
                );
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            c if "(){}*+?|^$.".contains(c) => {
                panic!("unsupported regex construct {c:?} in strategy {pattern:?}")
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional repetition suffix.
        let (lo, hi) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|c| *c == '}')
                        .unwrap_or_else(|| panic!("unclosed '{{' in regex strategy {pattern:?}"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    if let Some((m, n)) = body.split_once(',') {
                        let m: u32 = m.trim().parse().expect("repeat lower bound");
                        let n: u32 = n.trim().parse().expect("repeat upper bound");
                        (m, n)
                    } else {
                        let m: u32 = body.trim().parse().expect("repeat count");
                        (m, m)
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, lo, hi));
    }
    atoms
}

fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (atom, lo, hi) in parse_atoms(pattern) {
        let reps = lo + rng.next_below(u64::from(hi - lo) + 1) as u32;
        for _ in 0..reps {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let (a, b) = ranges[rng.next_below(ranges.len() as u64) as usize];
                    let span = (b as u32) - (a as u32) + 1;
                    let code = (a as u32) + rng.next_below(u64::from(span)) as u32;
                    out.push(char::from_u32(code).expect("valid char in class range"));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (10u64..20).sample(&mut r);
            assert!((10..20).contains(&v));
            let w = (0u32..1).sample(&mut r);
            assert_eq!(w, 0);
            let x = (3usize..=5).sample(&mut r);
            assert!((3..=5).contains(&x));
        }
    }

    #[test]
    fn float_range_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (-1.5f64..2.5).sample(&mut r);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn regex_class_with_counts() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-c]{2,4}".sample(&mut r);
            assert!(s.len() >= 2 && s.len() <= 4, "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn regex_literals_and_suffixes() {
        let mut r = rng();
        for _ in 0..50 {
            let s = "ab?[0-9]".sample(&mut r);
            assert!(s.starts_with('a'));
            assert!(s.ends_with(|c: char| c.is_ascii_digit()));
        }
    }

    #[test]
    fn vec_strategy_length() {
        let mut r = rng();
        for _ in 0..200 {
            let v = crate::collection::vec(0.0f64..1.0, 2..6).sample(&mut r);
            assert!(v.len() >= 2 && v.len() < 6);
        }
    }
}
