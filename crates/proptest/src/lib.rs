//! # proptest (offline shim)
//!
//! A self-contained, dependency-free subset of the `proptest` crate,
//! vendored so the workspace builds and tests **with no network access**
//! (the real crates-io registry is unreachable in this environment; see
//! DESIGN.md §5). The API mirrors the pieces this workspace's property
//! tests actually use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * numeric range strategies (`0u64..100`, `0.0f64..1.0`, ...),
//! * tuple strategies,
//! * `prop::collection::vec(element, size_range)`,
//! * simple regex string strategies (`"[a-z]{1,12}"`).
//!
//! Unlike the real proptest there is **no shrinking** and no persisted
//! failure file: each case is sampled from a deterministic per-test
//! stream (FNV-1a over the test path, SplitMix64 per case), so a failing
//! case reproduces exactly on re-run — which is all a deterministic
//! simulation workspace needs from its property tests.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The conventional glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of the crate root (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// Each test function runs `cases` times with fresh deterministic
/// samples; a failed `prop_assert!` aborts that case with a panic that
/// names the test and case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                const __TEST_NAME: &str =
                    concat!(module_path!(), "::", stringify!($name));
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        __TEST_NAME,
                        __case as u64,
                    );
                    let __result = (||
                        -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(
                            #[allow(unused_mut)]
                            let $arg =
                                $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                        )*
                        {
                            $body
                        }
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(__e) = __result {
                        panic!(
                            "[{}] case {} of {} failed: {}",
                            __TEST_NAME, __case, __cfg.cases, __e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (rather than unwinding through the sampler) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let __a = $a;
        let __b = $b;
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: `{:?}` != `{:?}` ({} == {})",
            __a, __b, stringify!($a), stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let __a = $a;
        let __b = $b;
        $crate::prop_assert!(__a == __b, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let __a = $a;
        let __b = $b;
        $crate::prop_assert!(
            __a != __b,
            "assertion failed: `{:?}` == `{:?}` ({} != {})",
            __a, __b, stringify!($a), stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let __a = $a;
        let __b = $b;
        $crate::prop_assert!(__a != __b, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 0u64..100,
            b in 5u32..6,
            c in -2.0f64..3.0,
            d in 1usize..10,
        ) {
            prop_assert!(a < 100);
            prop_assert_eq!(b, 5);
            prop_assert!((-2.0..3.0).contains(&c));
            prop_assert!((1..10).contains(&d));
        }

        #[test]
        fn vec_and_tuple_strategies(
            mut xs in prop::collection::vec(0.0f64..1.0, 1..20),
            pair in (0u64..10, 0u64..10),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            xs.sort_by(|p, q| p.partial_cmp(q).unwrap());
            prop_assert!(xs[0] >= 0.0 && xs[xs.len() - 1] < 1.0);
            prop_assert!(pair.0 < 10 && pair.1 < 10);
        }

        #[test]
        fn regex_strategy_shape(name in "[a-z]{1,12}") {
            prop_assert!(!name.is_empty() && name.len() <= 12);
            prop_assert!(name.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn full_u64_range_is_accepted(seed in 0u64..u64::MAX) {
            prop_assert!(seed < u64::MAX);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = 0u64..1_000_000;
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        let mut c = TestRng::for_case("x", 4);
        let vals: Vec<u64> = (0..8).map(|_| strat.sample(&mut c)).collect();
        assert!(vals.iter().any(|v| *v != vals[0]), "stream should vary");
    }
}
