//! Cross-session content analysis.
//!
//! The paper identifies the static portion by diffing payloads across
//! responses to *different* queries: bytes that recur are the HTTP
//! header, HTML head, CSS and static menu bar. In the simulator, payload
//! identity is carried by per-span content ids (equal ids ⇔ equal
//! bytes), so the analysis reduces to: a content id observed in sessions
//! of at least `min_sessions` distinct queries is static.

use std::collections::{HashMap, HashSet};
use tcpsim::{NodeId, PktDir, PktEvent};

/// Finds the static content ids across a set of sessions.
///
/// `sessions` are the per-query event lists (each from a *different*
/// query — using repeats of one query would misfile its dynamic content
/// as static, which is precisely why the paper's probe issues distinct
/// queries). Only packets received at `client_of(session_index)` are
/// considered. `min_sessions` is the recurrence threshold (≥ 2).
///
/// Sessions are taken by borrow (`&[PktEvent]` slices work as well as
/// owned `Vec<PktEvent>`s), so callers holding raw completions — e.g. a
/// `RetainRaw` campaign sink — can hand their traces over without
/// cloning a single packet event.
pub fn find_static_content_ids<S: AsRef<[PktEvent]>>(
    sessions: &[S],
    client_of: impl Fn(usize) -> NodeId,
    min_sessions: usize,
) -> HashSet<u64> {
    assert!(min_sessions >= 2, "recurrence threshold must be ≥ 2");
    let mut seen_in: HashMap<u64, HashSet<usize>> = HashMap::new();
    for (i, events) in sessions.iter().enumerate() {
        let client = client_of(i);
        for ev in events.as_ref() {
            if ev.node != client || ev.dir != PktDir::Rx {
                continue;
            }
            for span in &ev.meta {
                seen_in.entry(span.content).or_default().insert(i);
            }
        }
    }
    seen_in
        .into_iter()
        .filter(|(_, sessions)| sessions.len() >= min_sessions)
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimTime;
    use tcpsim::{ConnId, Marker, MetaSpan, PktKind};

    fn rx(node: u32, content: u64, marker: Marker) -> PktEvent {
        PktEvent {
            t: SimTime::ZERO,
            node: NodeId(node),
            conn: ConnId(0),
            session: 0,
            dir: PktDir::Rx,
            kind: PktKind::Data,
            seq: 0,
            len: 100,
            ack: 0,
            push: false,
            meta: vec![MetaSpan {
                offset: 0,
                len: 100,
                marker,
                content,
            }]
            .into(),
        }
    }

    #[test]
    fn recurring_content_is_static() {
        // 3 sessions, distinct queries: content 1 recurs (static), 100x
        // are per-query (dynamic).
        let sessions = vec![
            vec![rx(1, 1, Marker::Static), rx(1, 1001, Marker::Dynamic)],
            vec![rx(1, 1, Marker::Static), rx(1, 1002, Marker::Dynamic)],
            vec![rx(1, 1, Marker::Static), rx(1, 1003, Marker::Dynamic)],
        ];
        let ids = find_static_content_ids(&sessions, |_| NodeId(1), 2);
        assert!(ids.contains(&1));
        assert!(!ids.contains(&1001));
        assert!(!ids.contains(&1002));
        assert_eq!(ids.len(), 1);
    }

    #[test]
    fn works_across_different_clients() {
        let sessions = vec![
            vec![rx(1, 5, Marker::Static), rx(1, 2001, Marker::Dynamic)],
            vec![rx(2, 5, Marker::Static), rx(2, 2002, Marker::Dynamic)],
        ];
        let clients = [NodeId(1), NodeId(2)];
        let ids = find_static_content_ids(&sessions, |i| clients[i], 2);
        assert_eq!(ids, HashSet::from([5]));
    }

    #[test]
    fn threshold_controls_sensitivity() {
        let sessions = vec![
            vec![rx(1, 7, Marker::Static)],
            vec![rx(1, 7, Marker::Static)],
            vec![rx(1, 8, Marker::Static)],
        ];
        let loose = find_static_content_ids(&sessions, |_| NodeId(1), 2);
        assert!(loose.contains(&7) && !loose.contains(&8));
        let strict = find_static_content_ids(&sessions, |_| NodeId(1), 3);
        assert!(strict.is_empty());
    }

    #[test]
    fn tx_packets_and_other_nodes_ignored() {
        let mut tx = rx(1, 9, Marker::Request);
        tx.dir = PktDir::Tx;
        let other_node = rx(3, 10, Marker::Static);
        let sessions = vec![vec![tx.clone(), other_node.clone()], vec![tx, other_node]];
        let ids = find_static_content_ids(&sessions, |_| NodeId(1), 2);
        assert!(ids.is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_one_rejected() {
        find_static_content_ids(&[] as &[Vec<PktEvent>], |_| NodeId(1), 1);
    }
}
