//! Human-readable trace dumps — the simulator's `tcpdump -r`.
//!
//! [`render`] turns a session's packet events into text lines close to
//! tcpdump's flavour, with the content markers appended (the simulator's
//! stand-in for `-X` payload dumps):
//!
//! ```text
//! 371.2451 node1        Tx DATA seq 0:400 ack 0 win 262144 PSH [request#500000000042:400]
//! 612.9001 node1        Rx ACK  seq 400 ack 400 win 262144
//! ```
//!
//! [`parse_line`] reads the core fields back (used by tests to guarantee
//! dumps stay machine-readable, and handy for grepping long runs).

use crate::errors::SessionError;
use crate::session::ClientTrace;
use tcpsim::{Marker, NodeId, PktDir, PktEvent, PktKind};

fn marker_tag(m: Marker) -> &'static str {
    match m {
        Marker::Request => "request",
        Marker::Static => "static",
        Marker::Dynamic => "dynamic",
        Marker::BeQuery => "be-query",
        Marker::BeResponse => "be-response",
        Marker::Error => "error",
        Marker::Other => "other",
    }
}

fn kind_tag(k: PktKind) -> &'static str {
    match k {
        PktKind::Syn => "SYN",
        PktKind::SynAck => "SYNACK",
        PktKind::Ack => "ACK",
        PktKind::Data => "DATA",
        PktKind::Fin => "FIN",
    }
}

/// Renders one packet event as a dump line.
pub fn render_line(ev: &PktEvent) -> String {
    let dir = match ev.dir {
        PktDir::Tx => "Tx",
        PktDir::Rx => "Rx",
        PktDir::Drop => "DROP",
    };
    let mut line = format!(
        "{:.4} node{} {} {} seq {}:{} ack {} len {}",
        ev.t.as_millis_f64(),
        ev.node.0,
        dir,
        kind_tag(ev.kind),
        ev.seq,
        ev.seq + ev.len as u64,
        ev.ack,
        ev.len,
    );
    if ev.push {
        line.push_str(" PSH");
    }
    for m in &ev.meta {
        line.push_str(&format!(
            " [{}#{}:{}]",
            marker_tag(m.marker),
            m.content,
            m.len
        ));
    }
    line
}

/// Renders a whole session (one line per event).
pub fn render(events: &[PktEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&render_line(ev));
        out.push('\n');
    }
    out
}

/// Renders only the client-side view with a header summarising the
/// session landmarks — the format used by the `fig4` harness's debug
/// output and by humans grepping long runs.
pub fn render_client_view(events: &[PktEvent], client: NodeId) -> Result<String, SessionError> {
    let trace = ClientTrace::new(events, client)?;
    let mut out = format!(
        "# client node{} tb={:.4}ms rtt={:?} bytes={}\n",
        client.0,
        trace.tb.as_millis_f64(),
        trace.rtt_ms,
        trace.bytes_received()
    );
    let mut all: Vec<&PktEvent> = trace.tx_all.iter().chain(trace.rx_all.iter()).collect();
    all.sort_by_key(|e| e.t);
    for ev in all {
        out.push_str(&render_line(ev));
        out.push('\n');
    }
    Ok(out)
}

/// The core fields parsed back from a dump line.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParsedLine {
    /// Timestamp in ms.
    pub t_ms: f64,
    /// Node id.
    pub node: u32,
    /// Direction string equality: "Tx" | "Rx" | "DROP".
    pub dir: PktDir,
    /// Packet kind.
    pub kind: PktKind,
    /// Sequence number.
    pub seq: u64,
    /// Payload length.
    pub len: u32,
    /// Acknowledgement number.
    pub ack: u64,
    /// PSH flag.
    pub push: bool,
}

/// Parses the core fields back from a [`render_line`] output. Returns
/// `None` for comment lines or malformed input.
pub fn parse_line(line: &str) -> Option<ParsedLine> {
    if line.starts_with('#') {
        return None;
    }
    let mut it = line.split_whitespace();
    let t_ms: f64 = it.next()?.parse().ok()?;
    let node: u32 = it.next()?.strip_prefix("node")?.parse().ok()?;
    let dir = match it.next()? {
        "Tx" => PktDir::Tx,
        "Rx" => PktDir::Rx,
        "DROP" => PktDir::Drop,
        _ => return None,
    };
    let kind = match it.next()? {
        "SYN" => PktKind::Syn,
        "SYNACK" => PktKind::SynAck,
        "ACK" => PktKind::Ack,
        "DATA" => PktKind::Data,
        "FIN" => PktKind::Fin,
        _ => return None,
    };
    if it.next()? != "seq" {
        return None;
    }
    let range = it.next()?;
    let (seq_s, _) = range.split_once(':')?;
    let seq: u64 = seq_s.parse().ok()?;
    if it.next()? != "ack" {
        return None;
    }
    let ack: u64 = it.next()?.parse().ok()?;
    if it.next()? != "len" {
        return None;
    }
    let len: u32 = it.next()?.parse().ok()?;
    let push = it.next() == Some("PSH");
    Some(ParsedLine {
        t_ms,
        node,
        dir,
        kind,
        seq,
        len,
        ack,
        push,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimTime;
    use tcpsim::{ConnId, MetaSpan, SpanVec};

    fn ev(kind: PktKind, push: bool) -> PktEvent {
        PktEvent {
            t: SimTime::from_micros(12_345),
            node: NodeId(7),
            conn: ConnId(0),
            session: 1,
            dir: PktDir::Rx,
            kind,
            seq: 1460,
            len: if kind == PktKind::Data { 1460 } else { 0 },
            ack: 400,
            push,
            meta: if kind == PktKind::Data {
                vec![MetaSpan {
                    offset: 1460,
                    len: 1460,
                    marker: Marker::Static,
                    content: 1,
                }]
                .into()
            } else {
                SpanVec::new()
            },
        }
    }

    #[test]
    fn render_contains_all_fields() {
        let line = render_line(&ev(PktKind::Data, true));
        assert!(line.contains("12.3450"));
        assert!(line.contains("node7"));
        assert!(line.contains("Rx DATA"));
        assert!(line.contains("seq 1460:2920"));
        assert!(line.contains("PSH"));
        assert!(line.contains("[static#1:1460]"));
    }

    #[test]
    fn roundtrip_core_fields() {
        for (kind, push) in [
            (PktKind::Syn, false),
            (PktKind::SynAck, false),
            (PktKind::Ack, false),
            (PktKind::Data, true),
            (PktKind::Data, false),
            (PktKind::Fin, true),
        ] {
            let e = ev(kind, push);
            let parsed = parse_line(&render_line(&e)).unwrap();
            assert_eq!(parsed.kind, kind);
            assert_eq!(parsed.push, push);
            assert_eq!(parsed.node, 7);
            assert_eq!(parsed.seq, 1460);
            assert_eq!(parsed.ack, 400);
            assert_eq!(parsed.dir, PktDir::Rx);
            assert!((parsed.t_ms - 12.345).abs() < 1e-4);
        }
    }

    #[test]
    fn render_multiline_and_comment_skipped() {
        let events = vec![ev(PktKind::Syn, false), ev(PktKind::Data, true)];
        let text = render(&events);
        assert_eq!(text.lines().count(), 2);
        assert!(parse_line("# comment").is_none());
        assert!(parse_line("garbage").is_none());
    }

    #[test]
    fn client_view_has_header_and_sorted_lines() {
        let mut syn = ev(PktKind::Syn, false);
        syn.dir = PktDir::Tx;
        syn.t = SimTime::from_micros(1_000);
        let mut sa = ev(PktKind::SynAck, false);
        sa.t = SimTime::from_micros(9_000);
        let events = vec![sa, syn]; // deliberately out of order
        let view = render_client_view(&events, NodeId(7)).unwrap();
        let lines: Vec<&str> = view.lines().collect();
        assert!(lines[0].starts_with("# client node7"));
        let t1 = parse_line(lines[1]).unwrap().t_ms;
        let t2 = parse_line(lines[2]).unwrap().t_ms;
        assert!(t1 <= t2);
        assert!(render_client_view(&[], NodeId(7)).is_err());
    }
}
