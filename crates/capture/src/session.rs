//! Client-side view of one query session.

use crate::errors::SessionError;
use simcore::time::SimTime;
use tcpsim::{NodeId, PktDir, PktEvent, PktKind};

/// The packet events of one session as observed at the client, split
/// into transmit and receive sides, with the handshake landmarks
/// extracted.
#[derive(Clone, Debug)]
pub struct ClientTrace {
    /// Data-bearing packets received by the client, in time order.
    pub rx_data: Vec<PktEvent>,
    /// All packets received by the client (ACKs included).
    pub rx_all: Vec<PktEvent>,
    /// All packets transmitted by the client.
    pub tx_all: Vec<PktEvent>,
    /// Time the first SYN left (`tb` in the paper's Fig. 2).
    pub tb: SimTime,
    /// Handshake RTT estimate: first SYN-ACK arrival − first SYN
    /// departure (the quantity plotted on every RTT axis in the paper).
    pub rtt_ms: Option<f64>,
}

impl ClientTrace {
    /// Filters `events` down to those observed at `client`, requiring at
    /// least a transmitted SYN. Fails with
    /// [`SessionError::NoClientSyn`] for traces with no client-side SYN
    /// (capture started mid-session, or the wrong node was named).
    pub fn new(events: &[PktEvent], client: NodeId) -> Result<ClientTrace, SessionError> {
        let mut rx_data = Vec::new();
        let mut rx_all = Vec::new();
        let mut tx_all = Vec::new();
        for ev in events {
            if ev.node != client {
                continue;
            }
            match ev.dir {
                PktDir::Rx => {
                    if ev.kind == PktKind::Data && ev.len > 0 {
                        rx_data.push(ev.clone());
                    }
                    rx_all.push(ev.clone());
                }
                PktDir::Tx => tx_all.push(ev.clone()),
                PktDir::Drop => {}
            }
        }
        let syn = tx_all
            .iter()
            .find(|e| e.kind == PktKind::Syn)
            .ok_or(SessionError::NoClientSyn)?;
        let tb = syn.t;
        let rtt_ms = rx_all
            .iter()
            .find(|e| e.kind == PktKind::SynAck)
            .map(|sa| sa.t.saturating_since(tb).as_millis_f64());
        Ok(ClientTrace {
            rx_data,
            rx_all,
            tx_all,
            tb,
            rtt_ms,
        })
    }

    /// Time the HTTP GET left (`t1`): the first transmitted data packet.
    pub fn t1(&self) -> Option<SimTime> {
        self.tx_all
            .iter()
            .find(|e| e.kind == PktKind::Data && e.len > 0)
            .map(|e| e.t)
    }

    /// End of the request stream: the highest sequence the client sent
    /// plus its length (what the server's ACK must reach to confirm the
    /// full GET).
    pub fn request_end_seq(&self) -> u64 {
        self.tx_all
            .iter()
            .filter(|e| e.kind == PktKind::Data)
            .map(|e| e.seq + e.len as u64)
            .max()
            .unwrap_or(0)
    }

    /// Time the first ACK covering the whole GET arrived (`t2`).
    pub fn t2(&self) -> Option<SimTime> {
        let req_end = self.request_end_seq();
        if req_end == 0 {
            return None;
        }
        let t1 = self.t1()?;
        self.rx_all
            .iter()
            .find(|e| e.t >= t1 && e.ack >= req_end)
            .map(|e| e.t)
    }

    /// Time of the last received payload packet (`te`).
    pub fn te(&self) -> Option<SimTime> {
        self.rx_data.last().map(|e| e.t)
    }

    /// Total payload bytes received.
    pub fn bytes_received(&self) -> u64 {
        self.rx_data.iter().map(|e| e.len as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpsim::{ConnId, SpanVec};

    fn ev(
        t_ms: u64,
        node: u32,
        dir: PktDir,
        kind: PktKind,
        seq: u64,
        len: u32,
        ack: u64,
    ) -> PktEvent {
        PktEvent {
            t: SimTime::from_millis(t_ms),
            node: NodeId(node),
            conn: ConnId(0),
            session: 1,
            dir,
            kind,
            seq,
            len,
            ack,
            push: false,
            meta: SpanVec::new(),
        }
    }

    fn sample_session() -> Vec<PktEvent> {
        vec![
            ev(0, 1, PktDir::Tx, PktKind::Syn, 0, 0, 0),
            ev(50, 1, PktDir::Rx, PktKind::SynAck, 0, 0, 0),
            ev(50, 1, PktDir::Tx, PktKind::Ack, 0, 0, 0),
            ev(50, 1, PktDir::Tx, PktKind::Data, 0, 400, 0), // GET at t1=50
            ev(100, 1, PktDir::Rx, PktKind::Ack, 0, 0, 400), // t2=100
            ev(105, 1, PktDir::Rx, PktKind::Data, 0, 1460, 400),
            ev(106, 1, PktDir::Rx, PktKind::Data, 1460, 1460, 400),
            ev(300, 1, PktDir::Rx, PktKind::Data, 2920, 1000, 400), // te=300
            // Noise from other nodes must be ignored:
            ev(10, 9, PktDir::Tx, PktKind::Data, 0, 99, 0),
        ]
    }

    #[test]
    fn extracts_landmarks() {
        let tr = ClientTrace::new(&sample_session(), NodeId(1)).unwrap();
        assert_eq!(tr.tb, SimTime::ZERO);
        assert_eq!(tr.rtt_ms, Some(50.0));
        assert_eq!(tr.t1(), Some(SimTime::from_millis(50)));
        assert_eq!(tr.request_end_seq(), 400);
        assert_eq!(tr.t2(), Some(SimTime::from_millis(100)));
        assert_eq!(tr.te(), Some(SimTime::from_millis(300)));
        assert_eq!(tr.bytes_received(), 1460 + 1460 + 1000);
        assert_eq!(tr.rx_data.len(), 3);
    }

    #[test]
    fn ignores_other_nodes() {
        let tr = ClientTrace::new(&sample_session(), NodeId(1)).unwrap();
        assert!(tr.tx_all.iter().all(|e| e.node == NodeId(1)));
    }

    #[test]
    fn error_without_client_syn() {
        let evs = vec![ev(0, 2, PktDir::Tx, PktKind::Syn, 0, 0, 0)];
        assert_eq!(
            ClientTrace::new(&evs, NodeId(1)).unwrap_err(),
            SessionError::NoClientSyn
        );
    }

    #[test]
    fn t2_requires_full_request_ack() {
        let mut evs = sample_session();
        // Make the first ACK a partial one (ack=200 < 400).
        evs[4].ack = 200;
        let tr = ClientTrace::new(&evs, NodeId(1)).unwrap();
        // Next acking packet is the data packet at 105 with ack=400.
        assert_eq!(tr.t2(), Some(SimTime::from_millis(105)));
    }

    #[test]
    fn missing_rtt_when_no_synack() {
        let evs = vec![ev(0, 1, PktDir::Tx, PktKind::Syn, 0, 0, 0)];
        let tr = ClientTrace::new(&evs, NodeId(1)).unwrap();
        assert_eq!(tr.rtt_ms, None);
        assert_eq!(tr.t1(), None);
        assert_eq!(tr.t2(), None);
        assert_eq!(tr.te(), None);
    }
}
