//! Static/dynamic packet classification strategies.

use std::collections::HashSet;
use tcpsim::{Marker, PktEvent};

/// How to decide which received payload bytes are static vs dynamic.
#[derive(Clone, Debug)]
pub enum Classifier {
    /// Simulator ground truth via markers — the validation oracle.
    ByMarker,
    /// The paper's method: content that recurs across sessions of
    /// different queries (precomputed by
    /// [`crate::content::find_static_content_ids`]) is static.
    ByContent(HashSet<u64>),
    /// Online heuristic: everything up to and including the first
    /// PSH-flagged payload packet is static (application chunks end with
    /// PSH; the first chunk of a response is the static head).
    ByPush,
}

/// Byte-level classification of one received packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketClass {
    /// Packet carries static-content bytes.
    pub has_static: bool,
    /// Packet carries dynamic-content bytes.
    pub has_dynamic: bool,
}

impl Classifier {
    /// Classifies one received payload packet. For [`Classifier::ByPush`]
    /// the caller must pass `before_first_push_end` — whether the first
    /// PSH-terminated chunk is still in progress at this packet.
    pub fn classify(&self, ev: &PktEvent, before_first_push_end: bool) -> PacketClass {
        match self {
            Classifier::ByMarker => PacketClass {
                has_static: ev.meta.iter().any(|m| m.marker == Marker::Static),
                has_dynamic: ev.meta.iter().any(|m| m.marker == Marker::Dynamic),
            },
            Classifier::ByContent(static_ids) => {
                let mut has_static = false;
                let mut has_dynamic = false;
                for m in &ev.meta {
                    // Request echoes cannot appear in Rx data at the
                    // client; all payload spans are response content.
                    if static_ids.contains(&m.content) {
                        has_static = true;
                    } else {
                        has_dynamic = true;
                    }
                }
                PacketClass {
                    has_static,
                    has_dynamic,
                }
            }
            Classifier::ByPush => {
                if before_first_push_end {
                    PacketClass {
                        has_static: true,
                        // The packet that carries the PSH boundary can
                        // also carry the first dynamic bytes when the
                        // two portions coalesce; ByPush cannot see that,
                        // which is exactly its documented weakness.
                        has_dynamic: false,
                    }
                } else {
                    PacketClass {
                        has_static: false,
                        has_dynamic: true,
                    }
                }
            }
        }
    }

    /// Static bytes carried by the packet under this classifier.
    pub fn static_bytes(&self, ev: &PktEvent, before_first_push_end: bool) -> u64 {
        match self {
            Classifier::ByMarker => ev
                .meta
                .iter()
                .filter(|m| m.marker == Marker::Static)
                .map(|m| m.len as u64)
                .sum(),
            Classifier::ByContent(static_ids) => ev
                .meta
                .iter()
                .filter(|m| static_ids.contains(&m.content))
                .map(|m| m.len as u64)
                .sum(),
            Classifier::ByPush => {
                if before_first_push_end {
                    ev.len as u64
                } else {
                    0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimTime;
    use tcpsim::{ConnId, MetaSpan, NodeId, PktDir, PktKind};

    fn pkt(meta: Vec<MetaSpan>) -> PktEvent {
        let len = meta.iter().map(|m| m.len).sum();
        PktEvent {
            t: SimTime::ZERO,
            node: NodeId(1),
            conn: ConnId(0),
            session: 0,
            dir: PktDir::Rx,
            kind: PktKind::Data,
            seq: 0,
            len,
            ack: 0,
            push: false,
            meta: meta.into(),
        }
    }

    fn span(len: u32, marker: Marker, content: u64) -> MetaSpan {
        MetaSpan {
            offset: 0,
            len,
            marker,
            content,
        }
    }

    #[test]
    fn by_marker_reads_ground_truth() {
        let c = Classifier::ByMarker;
        let p = pkt(vec![
            span(1000, Marker::Static, 1),
            span(460, Marker::Dynamic, 1001),
        ]);
        let cls = c.classify(&p, false);
        assert!(cls.has_static && cls.has_dynamic);
        assert_eq!(c.static_bytes(&p, false), 1000);
    }

    #[test]
    fn by_content_uses_recurrence_set() {
        let ids: HashSet<u64> = [1].into();
        let c = Classifier::ByContent(ids);
        let coalesced = pkt(vec![
            span(1000, Marker::Static, 1),
            span(460, Marker::Dynamic, 1001),
        ]);
        let cls = c.classify(&coalesced, false);
        assert!(cls.has_static && cls.has_dynamic);
        assert_eq!(c.static_bytes(&coalesced, false), 1000);
        let pure_dynamic = pkt(vec![span(1460, Marker::Dynamic, 1002)]);
        let cls2 = c.classify(&pure_dynamic, false);
        assert!(!cls2.has_static && cls2.has_dynamic);
    }

    #[test]
    fn by_push_is_positional() {
        let c = Classifier::ByPush;
        let p = pkt(vec![span(1460, Marker::Static, 1)]);
        assert!(c.classify(&p, true).has_static);
        assert!(!c.classify(&p, true).has_dynamic);
        assert!(c.classify(&p, false).has_dynamic);
        assert_eq!(c.static_bytes(&p, true), 1460);
        assert_eq!(c.static_bytes(&p, false), 0);
    }
}
