//! Classifier agreement scoring.
//!
//! The paper's static/dynamic split rests on content analysis; the
//! simulator carries ground-truth markers precisely so the blind
//! classifiers can be *scored* rather than trusted. [`score_classifier`]
//! measures, over a batch of sessions, how often a candidate classifier
//! reproduces the oracle's boundary packets (`t4`, `t5`) and how far its
//! `Tdelta` deviates when it does not — the quantities that decide
//! whether downstream inference (fetch brackets, thresholds) survives
//! the classifier's mistakes.

use crate::classify::Classifier;
use crate::timeline::Timeline;
use tcpsim::{NodeId, PktEvent};

/// Agreement metrics of a candidate classifier against the marker
/// oracle, over a session batch.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassifierScore {
    /// Sessions where both classifiers produced a timeline.
    pub comparable: usize,
    /// Sessions where the candidate failed to produce a timeline but the
    /// oracle did.
    pub candidate_failed: usize,
    /// Sessions with exact agreement on the boundary (`t4` and `t5`).
    pub boundary_exact: usize,
    /// Mean absolute `Tdelta` error over comparable sessions, ms.
    pub mean_tdelta_err_ms: f64,
    /// Worst absolute `Tdelta` error, ms.
    pub max_tdelta_err_ms: f64,
    /// Mean absolute static-byte-count error, bytes.
    pub mean_static_bytes_err: f64,
}

impl ClassifierScore {
    /// Fraction of comparable sessions with exact boundary agreement.
    pub fn boundary_accuracy(&self) -> f64 {
        if self.comparable == 0 {
            return 0.0;
        }
        self.boundary_exact as f64 / self.comparable as f64
    }
}

/// Scores `candidate` against [`Classifier::ByMarker`] over a batch of
/// `(events, client)` sessions.
pub fn score_classifier(
    sessions: &[(&[PktEvent], NodeId)],
    candidate: &Classifier,
) -> ClassifierScore {
    let mut score = ClassifierScore {
        comparable: 0,
        candidate_failed: 0,
        boundary_exact: 0,
        mean_tdelta_err_ms: 0.0,
        max_tdelta_err_ms: 0.0,
        mean_static_bytes_err: 0.0,
    };
    let mut tdelta_errs = Vec::new();
    let mut byte_errs = Vec::new();
    for (events, client) in sessions {
        let oracle = match Timeline::extract(events, *client, &Classifier::ByMarker) {
            Ok(t) => t,
            Err(_) => continue,
        };
        let cand = match Timeline::extract(events, *client, candidate) {
            Ok(t) => t,
            Err(_) => {
                score.candidate_failed += 1;
                continue;
            }
        };
        score.comparable += 1;
        if oracle.t4 == cand.t4 && oracle.t5 == cand.t5 {
            score.boundary_exact += 1;
        }
        tdelta_errs.push((oracle.t_delta_ms() - cand.t_delta_ms()).abs());
        byte_errs.push((oracle.static_bytes as f64 - cand.static_bytes as f64).abs());
    }
    if !tdelta_errs.is_empty() {
        score.mean_tdelta_err_ms = tdelta_errs.iter().sum::<f64>() / tdelta_errs.len() as f64;
        score.max_tdelta_err_ms = tdelta_errs.iter().cloned().fold(0.0, f64::max);
        score.mean_static_bytes_err = byte_errs.iter().sum::<f64>() / byte_errs.len() as f64;
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Classifier;
    use simcore::time::SimTime;
    use std::collections::HashSet;
    use tcpsim::{ConnId, Marker, MetaSpan, PktDir, PktKind};

    #[allow(clippy::too_many_arguments)]
    fn ev(
        t_ms: u64,
        dir: PktDir,
        kind: PktKind,
        seq: u64,
        len: u32,
        ack: u64,
        push: bool,
        meta: Vec<MetaSpan>,
    ) -> PktEvent {
        PktEvent {
            t: SimTime::from_millis(t_ms),
            node: NodeId(1),
            conn: ConnId(0),
            session: 1,
            dir,
            kind,
            seq,
            len,
            ack,
            push,
            meta: meta.into(),
        }
    }

    fn span(offset: u64, len: u32, marker: Marker, content: u64) -> MetaSpan {
        MetaSpan {
            offset,
            len,
            marker,
            content,
        }
    }

    fn session(coalesced: bool) -> Vec<PktEvent> {
        let mut v = vec![
            ev(0, PktDir::Tx, PktKind::Syn, 0, 0, 0, false, vec![]),
            ev(50, PktDir::Rx, PktKind::SynAck, 0, 0, 0, false, vec![]),
            ev(
                50,
                PktDir::Tx,
                PktKind::Data,
                0,
                400,
                0,
                true,
                vec![span(0, 400, Marker::Request, 900)],
            ),
            ev(100, PktDir::Rx, PktKind::Ack, 0, 0, 400, false, vec![]),
        ];
        if coalesced {
            v.push(ev(
                105,
                PktDir::Rx,
                PktKind::Data,
                0,
                1460,
                400,
                true,
                vec![
                    span(0, 1000, Marker::Static, 1),
                    span(1000, 460, Marker::Dynamic, 1001),
                ],
            ));
            v.push(ev(
                106,
                PktDir::Rx,
                PktKind::Data,
                1460,
                500,
                400,
                true,
                vec![span(1460, 500, Marker::Dynamic, 1001)],
            ));
        } else {
            v.push(ev(
                105,
                PktDir::Rx,
                PktKind::Data,
                0,
                1000,
                400,
                true,
                vec![span(0, 1000, Marker::Static, 1)],
            ));
            v.push(ev(
                250,
                PktDir::Rx,
                PktKind::Data,
                1000,
                960,
                400,
                true,
                vec![span(1000, 960, Marker::Dynamic, 1001)],
            ));
        }
        v
    }

    #[test]
    fn content_classifier_scores_perfectly_here() {
        let s1 = session(false);
        let s2 = session(true);
        let sessions: Vec<(&[PktEvent], NodeId)> = vec![(&s1, NodeId(1)), (&s2, NodeId(1))];
        let ids: HashSet<u64> = [1u64].into();
        let score = score_classifier(&sessions, &Classifier::ByContent(ids));
        assert_eq!(score.comparable, 2);
        assert_eq!(score.boundary_exact, 2);
        assert_eq!(score.boundary_accuracy(), 1.0);
        assert_eq!(score.mean_tdelta_err_ms, 0.0);
        assert_eq!(score.candidate_failed, 0);
    }

    #[test]
    fn push_classifier_misses_the_coalesced_boundary() {
        let s1 = session(false);
        let s2 = session(true);
        let sessions: Vec<(&[PktEvent], NodeId)> = vec![(&s1, NodeId(1)), (&s2, NodeId(1))];
        let score = score_classifier(&sessions, &Classifier::ByPush);
        // The separated session agrees exactly; the coalesced one puts
        // the first dynamic bytes in the "static" packet, so ByPush gets
        // t5 wrong (and miscounts static bytes by the coalesced 460).
        assert_eq!(score.comparable, 2);
        assert_eq!(score.boundary_exact, 1);
        assert!(score.boundary_accuracy() < 1.0);
        assert!(score.mean_static_bytes_err > 0.0);
    }

    #[test]
    fn empty_batch_scores_zero() {
        let score = score_classifier(&[], &Classifier::ByPush);
        assert_eq!(score.comparable, 0);
        assert_eq!(score.boundary_accuracy(), 0.0);
    }
}
