//! Timeline extraction — the measurable quantities of the paper's Fig. 2
//! model.

use crate::classify::Classifier;
use crate::errors::{SessionError, TimelineError};
use crate::session::ClientTrace;
use simcore::time::SimTime;
use tcpsim::Marker;
use tcpsim::NodeId;
use tcpsim::PktEvent;

/// The packet-level landmarks of one query session at the client.
#[derive(Clone, Copy, Debug)]
pub struct Timeline {
    /// First SYN sent.
    pub tb: SimTime,
    /// HTTP GET sent.
    pub t1: SimTime,
    /// First ACK covering the GET received.
    pub t2: SimTime,
    /// First static-content packet received.
    pub t3: SimTime,
    /// Last static-content packet received.
    pub t4: SimTime,
    /// First dynamic-content packet received.
    pub t5: SimTime,
    /// Last payload packet received.
    pub te: SimTime,
    /// Handshake RTT estimate in ms.
    pub rtt_ms: f64,
    /// Static bytes identified by the classifier.
    pub static_bytes: u64,
    /// Total payload bytes received.
    pub total_bytes: u64,
}

impl Timeline {
    /// `Tstatic := t4 − t2` in ms.
    pub fn t_static_ms(&self) -> f64 {
        self.t4.saturating_since(self.t2).as_millis_f64()
    }

    /// `Tdynamic := t5 − t2` in ms.
    pub fn t_dynamic_ms(&self) -> f64 {
        self.t5.saturating_since(self.t2).as_millis_f64()
    }

    /// `Tdelta := t5 − t4` in ms, clamped at 0 (the portions coalesce at
    /// large RTT — "delivered back-to-back or even coalesce as a single
    /// packet").
    pub fn t_delta_ms(&self) -> f64 {
        self.t5.saturating_since(self.t4).as_millis_f64()
    }

    /// Overall user-perceived delay `te − tb` in ms.
    pub fn overall_ms(&self) -> f64 {
        self.te.saturating_since(self.tb).as_millis_f64()
    }

    /// Extracts the timeline from one session's events using the given
    /// classifier. Fails with a [`TimelineError`] naming why the session
    /// is unusable (no handshake, no GET, truncated response,
    /// retransmission storm, or no classifiable boundary).
    pub fn extract(
        events: &[PktEvent],
        client: NodeId,
        classifier: &Classifier,
    ) -> Result<Timeline, TimelineError> {
        let trace = ClientTrace::new(events, client)?;
        Timeline::from_trace(&trace, classifier)
    }

    /// Extracts the timeline from an already-filtered [`ClientTrace`].
    pub fn from_trace(
        trace: &ClientTrace,
        classifier: &Classifier,
    ) -> Result<Timeline, TimelineError> {
        let tb = trace.tb;
        let rtt_ms = trace.rtt_ms.ok_or(SessionError::NoHandshake)?;
        let t1 = trace.t1().ok_or(TimelineError::NoRequest)?;
        let t2 = trace.t2().ok_or(TimelineError::Truncated)?;
        let te = trace.te().ok_or(TimelineError::Truncated)?;
        // Landmark times come from packet arrival order; when most of the
        // payload is retransmitted copies, that order reflects loss
        // recovery rather than server behaviour — refuse to measure.
        let mut seen = std::collections::HashSet::new();
        let dup = trace
            .rx_data
            .iter()
            .filter(|e| !seen.insert((e.seq, e.len)))
            .count();
        if dup > trace.rx_data.len() / 2 {
            return Err(TimelineError::RetransmissionHeavy);
        }
        // A response consisting solely of error-stub bytes (a shed
        // query's fast rejection) has no content boundary to measure
        // under any classifier — name the reason instead of reporting a
        // missing boundary.
        if !trace.rx_data.is_empty()
            && trace
                .rx_data
                .iter()
                .all(|e| !e.meta.is_empty() && e.meta.iter().all(|m| m.marker == Marker::Error))
        {
            return Err(TimelineError::ErrorStubOnly);
        }
        let mut t3: Option<SimTime> = None;
        let mut t4: Option<SimTime> = None;
        let mut t5: Option<SimTime> = None;
        let mut static_bytes = 0u64;
        let mut total_bytes = 0u64;
        // ByPush state: are we still inside the first PSH-terminated
        // chunk?
        let mut before_first_push_end = true;
        for ev in &trace.rx_data {
            total_bytes += ev.len as u64;
            let class = classifier.classify(ev, before_first_push_end);
            static_bytes += classifier.static_bytes(ev, before_first_push_end);
            if class.has_static {
                if t3.is_none() {
                    t3 = Some(ev.t);
                }
                t4 = Some(ev.t);
            }
            if class.has_dynamic && t5.is_none() {
                t5 = Some(ev.t);
            }
            if ev.push {
                before_first_push_end = false;
            }
        }
        Ok(Timeline {
            tb,
            t1,
            t2,
            t3: t3.ok_or(TimelineError::NoStatic)?,
            t4: t4.ok_or(TimelineError::NoStatic)?,
            t5: t5.ok_or(TimelineError::NoDynamic)?,
            te,
            rtt_ms,
            static_bytes,
            total_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimTime;
    use tcpsim::{ConnId, Marker, MetaSpan, PktDir, PktKind};

    #[allow(clippy::too_many_arguments)]
    fn ev(
        t_ms: u64,
        dir: PktDir,
        kind: PktKind,
        seq: u64,
        len: u32,
        ack: u64,
        push: bool,
        meta: Vec<MetaSpan>,
    ) -> PktEvent {
        PktEvent {
            t: SimTime::from_millis(t_ms),
            node: NodeId(1),
            conn: ConnId(0),
            session: 1,
            dir,
            kind,
            seq,
            len,
            ack,
            push,
            meta: meta.into(),
        }
    }

    fn span(offset: u64, len: u32, marker: Marker, content: u64) -> MetaSpan {
        MetaSpan {
            offset,
            len,
            marker,
            content,
        }
    }

    /// A hand-built session: RTT 50ms, static 2 packets (ends 107, PSH),
    /// dynamic starts 250.
    fn session() -> Vec<PktEvent> {
        vec![
            ev(0, PktDir::Tx, PktKind::Syn, 0, 0, 0, false, vec![]),
            ev(50, PktDir::Rx, PktKind::SynAck, 0, 0, 0, false, vec![]),
            ev(
                50,
                PktDir::Tx,
                PktKind::Data,
                0,
                400,
                0,
                true,
                vec![span(0, 400, Marker::Request, 900)],
            ),
            ev(100, PktDir::Rx, PktKind::Ack, 0, 0, 400, false, vec![]),
            ev(
                105,
                PktDir::Rx,
                PktKind::Data,
                0,
                1460,
                400,
                false,
                vec![span(0, 1460, Marker::Static, 1)],
            ),
            ev(
                107,
                PktDir::Rx,
                PktKind::Data,
                1460,
                540,
                400,
                true,
                vec![span(1460, 540, Marker::Static, 1)],
            ),
            ev(
                250,
                PktDir::Rx,
                PktKind::Data,
                2000,
                1460,
                400,
                false,
                vec![span(2000, 1460, Marker::Dynamic, 1001)],
            ),
            ev(
                252,
                PktDir::Rx,
                PktKind::Data,
                3460,
                1000,
                400,
                true,
                vec![span(3460, 1000, Marker::Dynamic, 1001)],
            ),
        ]
    }

    #[test]
    fn marker_extraction_matches_hand_computation() {
        let tl = Timeline::extract(&session(), NodeId(1), &Classifier::ByMarker).unwrap();
        assert_eq!(tl.rtt_ms, 50.0);
        assert_eq!(tl.t1, SimTime::from_millis(50));
        assert_eq!(tl.t2, SimTime::from_millis(100));
        assert_eq!(tl.t3, SimTime::from_millis(105));
        assert_eq!(tl.t4, SimTime::from_millis(107));
        assert_eq!(tl.t5, SimTime::from_millis(250));
        assert_eq!(tl.te, SimTime::from_millis(252));
        assert_eq!(tl.t_static_ms(), 7.0);
        assert_eq!(tl.t_dynamic_ms(), 150.0);
        assert_eq!(tl.t_delta_ms(), 143.0);
        assert_eq!(tl.overall_ms(), 252.0);
        assert_eq!(tl.static_bytes, 2000);
        assert_eq!(tl.total_bytes, 4460);
    }

    #[test]
    fn content_classifier_agrees_with_markers_here() {
        let ids = std::collections::HashSet::from([1u64]);
        let a = Timeline::extract(&session(), NodeId(1), &Classifier::ByMarker).unwrap();
        let b = Timeline::extract(&session(), NodeId(1), &Classifier::ByContent(ids)).unwrap();
        assert_eq!(a.t4, b.t4);
        assert_eq!(a.t5, b.t5);
        assert_eq!(a.static_bytes, b.static_bytes);
    }

    #[test]
    fn push_classifier_agrees_when_no_coalescing() {
        let tl = Timeline::extract(&session(), NodeId(1), &Classifier::ByPush).unwrap();
        assert_eq!(tl.t4, SimTime::from_millis(107));
        assert_eq!(tl.t5, SimTime::from_millis(250));
    }

    #[test]
    fn coalesced_boundary_gives_zero_tdelta() {
        // Static end and dynamic start in one packet.
        let evs = vec![
            ev(0, PktDir::Tx, PktKind::Syn, 0, 0, 0, false, vec![]),
            ev(50, PktDir::Rx, PktKind::SynAck, 0, 0, 0, false, vec![]),
            ev(
                50,
                PktDir::Tx,
                PktKind::Data,
                0,
                400,
                0,
                true,
                vec![span(0, 400, Marker::Request, 900)],
            ),
            ev(100, PktDir::Rx, PktKind::Ack, 0, 0, 400, false, vec![]),
            ev(
                105,
                PktDir::Rx,
                PktKind::Data,
                0,
                1460,
                400,
                true,
                vec![
                    span(0, 1000, Marker::Static, 1),
                    span(1000, 460, Marker::Dynamic, 1001),
                ],
            ),
            ev(
                106,
                PktDir::Rx,
                PktKind::Data,
                1460,
                500,
                400,
                true,
                vec![span(1460, 500, Marker::Dynamic, 1001)],
            ),
        ];
        let tl = Timeline::extract(&evs, NodeId(1), &Classifier::ByMarker).unwrap();
        assert_eq!(tl.t4, tl.t5);
        assert_eq!(tl.t_delta_ms(), 0.0);
    }

    #[test]
    fn malformed_sessions_yield_typed_errors() {
        // Missing SYN-ACK.
        let evs = vec![ev(0, PktDir::Tx, PktKind::Syn, 0, 0, 0, false, vec![])];
        assert_eq!(
            Timeline::extract(&evs, NodeId(1), &Classifier::ByMarker).unwrap_err(),
            TimelineError::Session(SessionError::NoHandshake)
        );
        // Response without any dynamic part.
        let evs2 = vec![
            ev(0, PktDir::Tx, PktKind::Syn, 0, 0, 0, false, vec![]),
            ev(50, PktDir::Rx, PktKind::SynAck, 0, 0, 0, false, vec![]),
            ev(
                50,
                PktDir::Tx,
                PktKind::Data,
                0,
                400,
                0,
                true,
                vec![span(0, 400, Marker::Request, 900)],
            ),
            ev(
                100,
                PktDir::Rx,
                PktKind::Data,
                0,
                1460,
                400,
                true,
                vec![span(0, 1460, Marker::Static, 1)],
            ),
        ];
        assert_eq!(
            Timeline::extract(&evs2, NodeId(1), &Classifier::ByMarker).unwrap_err(),
            TimelineError::NoDynamic
        );
        // Wrong node entirely.
        assert_eq!(
            Timeline::extract(&evs, NodeId(9), &Classifier::ByMarker).unwrap_err(),
            TimelineError::Session(SessionError::NoClientSyn)
        );
    }

    #[test]
    fn error_stub_only_session_is_rejected_as_such() {
        // A shed query's fast rejection: the only payload back is the
        // error stub. Every classifier should name the refusal rather
        // than complain about a missing content boundary.
        let evs = vec![
            ev(0, PktDir::Tx, PktKind::Syn, 0, 0, 0, false, vec![]),
            ev(50, PktDir::Rx, PktKind::SynAck, 0, 0, 0, false, vec![]),
            ev(
                50,
                PktDir::Tx,
                PktKind::Data,
                0,
                400,
                0,
                true,
                vec![span(0, 400, Marker::Request, 900)],
            ),
            ev(
                100,
                PktDir::Rx,
                PktKind::Data,
                0,
                200,
                400,
                true,
                vec![span(0, 200, Marker::Error, 999)],
            ),
        ];
        for c in [Classifier::ByMarker, Classifier::ByPush] {
            assert_eq!(
                Timeline::extract(&evs, NodeId(1), &c).unwrap_err(),
                TimelineError::ErrorStubOnly
            );
        }
    }

    #[test]
    fn truncated_session_is_rejected() {
        // GET sent, never acknowledged, no payload back.
        let evs = vec![
            ev(0, PktDir::Tx, PktKind::Syn, 0, 0, 0, false, vec![]),
            ev(50, PktDir::Rx, PktKind::SynAck, 0, 0, 0, false, vec![]),
            ev(
                50,
                PktDir::Tx,
                PktKind::Data,
                0,
                400,
                0,
                true,
                vec![span(0, 400, Marker::Request, 900)],
            ),
        ];
        assert_eq!(
            Timeline::extract(&evs, NodeId(1), &Classifier::ByMarker).unwrap_err(),
            TimelineError::Truncated
        );
    }

    #[test]
    fn retransmission_storm_is_rejected() {
        // The same payload packet delivered over and over: more duplicate
        // receptions than fresh ones.
        let mut evs = session();
        let dup = evs[4].clone();
        for _ in 0..6 {
            evs.push(dup.clone());
        }
        assert_eq!(
            Timeline::extract(&evs, NodeId(1), &Classifier::ByMarker).unwrap_err(),
            TimelineError::RetransmissionHeavy
        );
        // A couple of duplicates (ordinary loss recovery) still extract.
        let mut light = session();
        light.push(dup);
        assert!(Timeline::extract(&light, NodeId(1), &Classifier::ByMarker).is_ok());
    }
}
