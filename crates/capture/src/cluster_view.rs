//! The Fig. 4 view: temporal clusters of packet events.
//!
//! Fig. 4 plots, per client, the send/receive timeline of a single query
//! and observes three clusters — handshake, static burst, dynamic burst —
//! whose separation collapses as RTT grows. This module renders that
//! view from a session trace: event times relative to `tb`, plus an
//! adaptive gap clustering of the receive events.

use crate::errors::SessionError;
use crate::session::ClientTrace;
use stats::cluster::{adaptive_gap_threshold, gap_clusters, Cluster};
use tcpsim::{NodeId, PktEvent};

/// One row of the Fig. 4 plot.
#[derive(Clone, Debug)]
pub struct TimelineView {
    /// Handshake RTT estimate in ms.
    pub rtt_ms: f64,
    /// Times (ms since `tb`) of packets sent by the client.
    pub tx_ms: Vec<f64>,
    /// Times (ms since `tb`) of packets received by the client.
    pub rx_ms: Vec<f64>,
    /// Temporal clusters over the received-payload events.
    pub rx_clusters: Vec<Cluster>,
}

impl TimelineView {
    /// Builds the view for one session. Fails with a [`SessionError`]
    /// for malformed sessions (no SYN, no completed handshake).
    pub fn build(events: &[PktEvent], client: NodeId) -> Result<TimelineView, SessionError> {
        let trace = ClientTrace::new(events, client)?;
        let tb = trace.tb;
        let rtt_ms = trace.rtt_ms.ok_or(SessionError::NoHandshake)?;
        let rel = |t: simcore::time::SimTime| t.saturating_since(tb).as_millis_f64();
        let tx_ms: Vec<f64> = trace.tx_all.iter().map(|e| rel(e.t)).collect();
        let rx_ms: Vec<f64> = trace.rx_all.iter().map(|e| rel(e.t)).collect();
        let rx_payload: Vec<f64> = trace.rx_data.iter().map(|e| rel(e.t)).collect();
        let rx_clusters = match adaptive_gap_threshold(&rx_payload, 2, 4.0) {
            Some(thr) => gap_clusters(&rx_payload, thr),
            None => {
                if rx_payload.is_empty() {
                    Vec::new()
                } else {
                    gap_clusters(&rx_payload, f64::INFINITY)
                }
            }
        };
        Ok(TimelineView {
            rtt_ms,
            tx_ms,
            rx_ms,
            rx_clusters,
        })
    }

    /// Number of distinct payload clusters — the paper's observable: 2
    /// separated bursts (static, dynamic) at small RTT, 1 merged burst
    /// beyond the threshold.
    pub fn payload_cluster_count(&self) -> usize {
        self.rx_clusters.len()
    }

    /// The gap in ms between the first and second payload clusters
    /// (visual `Tdelta`), when two or more clusters exist.
    pub fn first_gap_ms(&self) -> Option<f64> {
        if self.rx_clusters.len() < 2 {
            return None;
        }
        Some(self.rx_clusters[1].t_first - self.rx_clusters[0].t_last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimTime;
    use tcpsim::{ConnId, PktDir, PktKind, SpanVec};

    fn ev(t_ms: f64, dir: PktDir, kind: PktKind, len: u32) -> PktEvent {
        PktEvent {
            t: SimTime::from_micros((t_ms * 1000.0) as u64),
            node: NodeId(1),
            conn: ConnId(0),
            session: 1,
            dir,
            kind,
            seq: 0,
            len,
            ack: 1,
            push: false,
            meta: SpanVec::new(),
        }
    }

    fn session(static_at: f64, dynamic_at: f64) -> Vec<PktEvent> {
        let mut v = vec![
            ev(0.0, PktDir::Tx, PktKind::Syn, 0),
            ev(10.0, PktDir::Rx, PktKind::SynAck, 0),
            ev(10.0, PktDir::Tx, PktKind::Data, 400),
            ev(20.0, PktDir::Rx, PktKind::Ack, 0),
        ];
        for i in 0..4 {
            v.push(ev(
                static_at + i as f64 * 0.2,
                PktDir::Rx,
                PktKind::Data,
                1460,
            ));
        }
        for i in 0..6 {
            v.push(ev(
                dynamic_at + i as f64 * 0.2,
                PktDir::Rx,
                PktKind::Data,
                1460,
            ));
        }
        v
    }

    #[test]
    fn separated_bursts_give_two_clusters() {
        let view = TimelineView::build(&session(21.0, 150.0), NodeId(1)).unwrap();
        assert_eq!(view.payload_cluster_count(), 2);
        let gap = view.first_gap_ms().unwrap();
        assert!((gap - (150.0 - 21.6)).abs() < 0.5, "gap {gap}");
        assert_eq!(view.rtt_ms, 10.0);
    }

    #[test]
    fn merged_bursts_give_one_cluster() {
        let view = TimelineView::build(&session(21.0, 22.0), NodeId(1)).unwrap();
        assert_eq!(view.payload_cluster_count(), 1);
        assert!(view.first_gap_ms().is_none());
    }

    #[test]
    fn tx_and_rx_relative_to_tb() {
        let view = TimelineView::build(&session(21.0, 150.0), NodeId(1)).unwrap();
        assert_eq!(view.tx_ms[0], 0.0);
        assert!(view.rx_ms.iter().all(|&t| t >= 0.0));
        assert!(view.tx_ms.len() >= 2);
    }

    #[test]
    fn malformed_returns_typed_error() {
        assert_eq!(
            TimelineView::build(&[], NodeId(1)).unwrap_err(),
            SessionError::NoClientSyn
        );
    }
}
