//! Typed extraction errors.
//!
//! Real traces are messy: vantage points crash mid-download, servers
//! reset connections, retransmission storms blur packet timings. The
//! measurement pipeline must *skip but count* such sessions rather than
//! silently drop them (or worse, panic). These error types name the
//! reasons so aggregation can report how much data each filter removed.

use std::fmt;

/// Why a raw event list could not be reduced to a client-side trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// No SYN was transmitted by the claimed client node — either the
    /// trace belongs to someone else or capture started mid-session.
    NoClientSyn,
    /// The client sent SYNs but never saw a SYN-ACK: the handshake never
    /// completed (server outage, path blackhole, aborted session).
    NoHandshake,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::NoClientSyn => {
                write!(f, "no client-side SYN in trace")
            }
            SessionError::NoHandshake => {
                write!(f, "handshake never completed (no SYN-ACK)")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Why a [`Timeline`](crate::Timeline) could not be extracted from a
/// session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimelineError {
    /// The session itself was unusable.
    Session(SessionError),
    /// The handshake completed but no HTTP GET was ever sent.
    NoRequest,
    /// The session was truncated: the GET went out but the response
    /// never completed (mid-download abort, client deadline).
    Truncated,
    /// No static-content boundary could be identified.
    NoStatic,
    /// No dynamic-content packet was identified — e.g. a degraded
    /// response whose dynamic portion was replaced by an error stub.
    NoDynamic,
    /// The response consisted entirely of an error/rejection stub (a
    /// shed query's fast rejection): there is no content timeline to
    /// measure, only the refusal.
    ErrorStubOnly,
    /// Retransmitted payload dominates the receive stream; landmark
    /// times would be fiction, not measurement.
    RetransmissionHeavy,
    /// Packet tracing was disabled while the session ran, so there is
    /// nothing to extract — an empty timeline here would be a harness
    /// misconfiguration silently read as "no packets arrived".
    TracingDisabled,
}

impl fmt::Display for TimelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimelineError::Session(e) => write!(f, "unusable session: {e}"),
            TimelineError::NoRequest => write!(f, "no HTTP GET in session"),
            TimelineError::Truncated => {
                write!(f, "session truncated before the response completed")
            }
            TimelineError::NoStatic => {
                write!(f, "no static-content boundary found")
            }
            TimelineError::NoDynamic => {
                write!(f, "no dynamic-content packet found")
            }
            TimelineError::ErrorStubOnly => {
                write!(f, "response was only an error/rejection stub")
            }
            TimelineError::RetransmissionHeavy => {
                write!(f, "retransmissions dominate the receive stream")
            }
            TimelineError::TracingDisabled => {
                write!(f, "packet tracing was disabled; no events were captured")
            }
        }
    }
}

impl TimelineError {
    /// The stable telemetry counter name for this skip reason, as it
    /// appears in `metrics.tsv` (`capture.err.*` namespace). Names are
    /// part of the metrics document format: renaming one is a breaking
    /// change for downstream tooling.
    pub fn metric_name(&self) -> &'static str {
        match self {
            TimelineError::Session(SessionError::NoClientSyn) => {
                "capture.err.session_no_client_syn"
            }
            TimelineError::Session(SessionError::NoHandshake) => "capture.err.session_no_handshake",
            TimelineError::NoRequest => "capture.err.no_request",
            TimelineError::Truncated => "capture.err.truncated",
            TimelineError::NoStatic => "capture.err.no_static",
            TimelineError::NoDynamic => "capture.err.no_dynamic",
            TimelineError::ErrorStubOnly => "capture.err.error_stub_only",
            TimelineError::RetransmissionHeavy => "capture.err.retransmission_heavy",
            TimelineError::TracingDisabled => "capture.err.tracing_disabled",
        }
    }
}

impl std::error::Error for TimelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TimelineError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SessionError> for TimelineError {
    fn from(e: SessionError) -> TimelineError {
        TimelineError::Session(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SessionError::NoClientSyn.to_string().contains("SYN"));
        assert!(TimelineError::Session(SessionError::NoHandshake)
            .to_string()
            .contains("SYN-ACK"));
        assert!(TimelineError::Truncated.to_string().contains("truncated"));
        assert!(TimelineError::TracingDisabled
            .to_string()
            .contains("tracing was disabled"));
    }

    #[test]
    fn metric_names_are_unique_and_namespaced() {
        let all = [
            TimelineError::Session(SessionError::NoClientSyn),
            TimelineError::Session(SessionError::NoHandshake),
            TimelineError::NoRequest,
            TimelineError::Truncated,
            TimelineError::NoStatic,
            TimelineError::NoDynamic,
            TimelineError::ErrorStubOnly,
            TimelineError::RetransmissionHeavy,
            TimelineError::TracingDisabled,
        ];
        let names: std::collections::BTreeSet<&str> = all.iter().map(|e| e.metric_name()).collect();
        assert_eq!(names.len(), all.len());
        assert!(names.iter().all(|n| n.starts_with("capture.err.")));
    }

    #[test]
    fn error_source_chain() {
        use std::error::Error;
        let e = TimelineError::Session(SessionError::NoClientSyn);
        assert!(e.source().is_some());
        assert!(TimelineError::NoDynamic.source().is_none());
    }
}
