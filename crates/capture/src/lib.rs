//! # capture — client-side packet-trace analysis
//!
//! The paper's raw material is "detailed TCPdump with full
//! application-layer payloads" collected at every vantage point. This
//! crate is that pipeline's simulator analogue. Given a query session's
//! packet events it produces the [`Timeline`] of Fig. 2:
//!
//! ```text
//! tb  — first SYN                       t4 — last static-content packet
//! t1  — HTTP GET sent                   t5 — first dynamic-content packet
//! t2  — first ACK of the GET            te — last packet of the response
//! t3  — first static-content packet
//! ```
//!
//! Three static/dynamic classifiers are provided, in decreasing order of
//! privilege:
//!
//! * [`classify::Classifier::ByMarker`] — simulator ground truth (the
//!   analogue of knowing the page layout a priori); used to *validate*
//!   the others;
//! * [`classify::Classifier::ByContent`] — the paper's method: payload
//!   bytes that recur across sessions of *different* queries are static
//!   ([`content::find_static_content_ids`] does the cross-session
//!   analysis);
//! * [`classify::Classifier::ByPush`] — a weaker online heuristic using
//!   PSH flags at application-chunk boundaries.
//!
//! [`cluster_view`] reproduces the Fig. 4 temporal-cluster visualisation
//! of packet events.
//!
//! [`Timeline`]: timeline::Timeline

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod classify;
pub mod cluster_view;
pub mod content;
pub mod dump;
pub mod errors;
pub mod session;
pub mod timeline;
pub mod validate;

pub use classify::Classifier;
pub use content::find_static_content_ids;
pub use errors::{SessionError, TimelineError};
pub use session::ClientTrace;
pub use timeline::Timeline;
