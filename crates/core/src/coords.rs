//! Network coordinates — the reviewer-suggested extension.
//!
//! Review #3 of the paper proposed: "use a virtual coordinates system to
//! estimate the RTT between FE and BE servers and then take this and
//! Tstatic+RTT out from Tdynamic in order to say something about Tproc
//! at the datacenter". This module implements that idea with a
//! Vivaldi-style embedding (Dabek et al., SIGCOMM 2004): 2-D Euclidean
//! coordinates plus a non-negative *height* (access-link penalty),
//! trained from pairwise RTT samples.
//!
//! The intended pipeline: clients measure handshake RTTs to many FEs
//! (Dataset B sweeps) and ping the data-center prefixes directly; the
//! embedding then predicts the *unmeasured* FE↔BE RTTs, which the
//! factoring heuristic subtracts from `Tdynamic` to isolate `Tproc`
//! without any distance/regression step.

use simcore::rng::Rng;

/// A Vivaldi coordinate: 2-D position plus height.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Coord {
    /// X component (ms).
    pub x: f64,
    /// Y component (ms).
    pub y: f64,
    /// Height component (ms, ≥ 0) — models the access-link detour that
    /// every path through this node pays.
    pub h: f64,
}

impl Coord {
    /// Predicted RTT between two coordinates.
    pub fn rtt_to(&self, other: &Coord) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt() + self.h + other.h
    }
}

/// One RTT observation between two nodes.
#[derive(Clone, Copy, Debug)]
pub struct RttSample {
    /// First node id.
    pub a: usize,
    /// Second node id.
    pub b: usize,
    /// Measured RTT in ms.
    pub rtt_ms: f64,
}

/// A Vivaldi embedding over `n` nodes.
#[derive(Clone, Debug)]
pub struct Vivaldi {
    coords: Vec<Coord>,
    errors: Vec<f64>,
}

const CE: f64 = 0.25;
const CC: f64 = 0.25;

impl Vivaldi {
    /// Initialises `n` nodes at small random positions (identical
    /// positions would make force directions degenerate).
    pub fn new(n: usize, seed: u64) -> Vivaldi {
        let mut rng = Rng::from_seed_and_name(seed, "inference/vivaldi");
        let coords = (0..n)
            .map(|_| Coord {
                x: rng.range_f64(-1.0, 1.0),
                y: rng.range_f64(-1.0, 1.0),
                h: 0.1,
            })
            .collect();
        Vivaldi {
            coords,
            errors: vec![1.0; n],
        }
    }

    /// Number of embedded nodes.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// The coordinate of a node.
    pub fn coord(&self, i: usize) -> Coord {
        self.coords[i]
    }

    /// Applies one Vivaldi update for a sample (adjusts node `a` toward
    /// or away from node `b`).
    pub fn update(&mut self, s: &RttSample) {
        assert!(s.a != s.b && s.rtt_ms > 0.0);
        let (ca, cb) = (self.coords[s.a], self.coords[s.b]);
        let dist = ca.rtt_to(&cb);
        let w = self.errors[s.a] / (self.errors[s.a] + self.errors[s.b]).max(1e-9);
        let es = (dist - s.rtt_ms).abs() / s.rtt_ms;
        self.errors[s.a] = (es * CE * w + self.errors[s.a] * (1.0 - CE * w)).clamp(0.02, 2.0);
        let delta = CC * w;
        let dx = ca.x - cb.x;
        let dy = ca.y - cb.y;
        let planar = (dx * dx + dy * dy).sqrt().max(1e-9);
        let force = s.rtt_ms - dist;
        let c = &mut self.coords[s.a];
        c.x += delta * force * (dx / planar);
        c.y += delta * force * (dy / planar);
        c.h = (c.h + delta * force * (c.h / dist.max(1e-9))).max(0.05);
    }

    /// Trains on a sample set for `passes` passes, updating both
    /// endpoints of every sample (shuffled per pass for stability).
    pub fn train(&mut self, samples: &[RttSample], passes: usize, seed: u64) {
        let mut rng = Rng::from_seed_and_name(seed, "inference/vivaldi/train");
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _ in 0..passes {
            rng.shuffle(&mut order);
            for &i in &order {
                let s = samples[i];
                self.update(&s);
                self.update(&RttSample {
                    a: s.b,
                    b: s.a,
                    rtt_ms: s.rtt_ms,
                });
            }
        }
    }

    /// Predicted RTT between two nodes.
    pub fn predict(&self, a: usize, b: usize) -> f64 {
        self.coords[a].rtt_to(&self.coords[b])
    }

    /// Median relative prediction error over a sample set.
    pub fn median_rel_error(&self, samples: &[RttSample]) -> f64 {
        let errs: Vec<f64> = samples
            .iter()
            .map(|s| (self.predict(s.a, s.b) - s.rtt_ms).abs() / s.rtt_ms)
            .collect();
        stats::quantile::median(&errs).unwrap_or(f64::NAN)
    }
}

/// The reviewer's `Tproc` heuristic: subtract the coordinate-estimated
/// network term from the small-RTT `Tdynamic`.
///
/// `t_dynamic_ms` should be a small-RTT median (where `Tdynamic ≈
/// Tfetch`), `rtt_be_est_ms` the embedding's FE↔BE estimate, `c_rounds`
/// the assumed number of BE window rounds (the paper's constant `C`),
/// and `fe_overhead_ms` the FE service allowance.
pub fn tproc_via_coords(
    t_dynamic_ms: f64,
    rtt_be_est_ms: f64,
    c_rounds: f64,
    fe_overhead_ms: f64,
) -> f64 {
    (t_dynamic_ms - c_rounds * rtt_be_est_ms - fe_overhead_ms).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic ground truth: nodes on a plane, RTT = Euclidean + per-
    /// node access penalty.
    fn synthetic(n: usize, seed: u64) -> (Vec<(f64, f64, f64)>, Vec<RttSample>) {
        let mut rng = Rng::from_seed(seed);
        let nodes: Vec<(f64, f64, f64)> = (0..n)
            .map(|_| {
                (
                    rng.range_f64(0.0, 100.0),
                    rng.range_f64(0.0, 100.0),
                    rng.range_f64(1.0, 4.0),
                )
            })
            .collect();
        let mut samples = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                let dx = nodes[a].0 - nodes[b].0;
                let dy = nodes[a].1 - nodes[b].1;
                let rtt = (dx * dx + dy * dy).sqrt() + nodes[a].2 + nodes[b].2;
                samples.push(RttSample { a, b, rtt_ms: rtt });
            }
        }
        (nodes, samples)
    }

    #[test]
    fn embeds_a_euclidean_world_accurately() {
        let (_, samples) = synthetic(25, 1);
        let mut v = Vivaldi::new(25, 1);
        v.train(&samples, 60, 1);
        let err = v.median_rel_error(&samples);
        assert!(err < 0.10, "median relative error {err:.3}");
    }

    #[test]
    fn predicts_held_out_pairs() {
        let (_, samples) = synthetic(30, 2);
        // Hold out every 7th pair.
        let train: Vec<RttSample> = samples
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 7 != 0)
            .map(|(_, s)| *s)
            .collect();
        let held: Vec<RttSample> = samples
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 7 == 0)
            .map(|(_, s)| *s)
            .collect();
        let mut v = Vivaldi::new(30, 2);
        v.train(&train, 60, 2);
        let err = v.median_rel_error(&held);
        assert!(err < 0.15, "held-out median relative error {err:.3}");
    }

    #[test]
    fn heights_stay_non_negative_and_symmetry_holds() {
        let (_, samples) = synthetic(15, 3);
        let mut v = Vivaldi::new(15, 3);
        v.train(&samples, 30, 3);
        for i in 0..v.len() {
            assert!(v.coord(i).h >= 0.0);
        }
        assert!((v.predict(2, 9) - v.predict(9, 2)).abs() < 1e-9);
    }

    #[test]
    fn tproc_heuristic_arithmetic() {
        // Tdynamic 180, RTTbe est 40, C = 2, overhead 10 → Tproc ≈ 90.
        assert_eq!(tproc_via_coords(180.0, 40.0, 2.0, 10.0), 90.0);
        // Never negative.
        assert_eq!(tproc_via_coords(50.0, 40.0, 2.0, 10.0), 0.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let (_, samples) = synthetic(12, 4);
        let run = || {
            let mut v = Vivaldi::new(12, 4);
            v.train(&samples, 20, 4);
            v.predict(0, 11)
        };
        assert_eq!(run(), run());
    }
}
