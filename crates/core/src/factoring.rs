//! Factoring the fetch time — Eq. (2) and Sec. 5 of the paper.
//!
//! `Tfetch = Tproc + C·RTTbe`. Neither term is observable at the client,
//! but `RTTbe` grows with the FE↔BE distance while `Tproc` does not.
//! The paper therefore takes, for each data center, nearby FEs at varying
//! distances, measures `Tdynamic` from *small-RTT* clients (where
//! `Tdynamic ≈ Tfetch`), and regresses against distance:
//!
//! * **Y-intercept** → the back-end computation time `Tproc`
//!   (paper: ≈ 260 ms for Bing, ≈ 34 ms for Google);
//! * **slope** → the network contribution per mile, `C · rtt_per_mile`.
//!
//! [`factor_fetch_time`] runs that regression (OLS plus a Theil–Sen
//! cross-check) and optionally converts the slope into an estimate of
//! `C` given an assumed per-mile RTT.

use stats::regress::{ols, theil_sen, Fit};

/// The result of factoring `Tfetch` into processing and network terms.
#[derive(Clone, Copy, Debug)]
pub struct FetchFactoring {
    /// OLS fit of `Tdynamic` (ms) against distance (miles).
    pub fit: Fit,
    /// Theil–Sen robust cross-check.
    pub robust: Fit,
    /// Estimated back-end processing time (the OLS intercept), ms.
    pub tproc_ms: f64,
    /// Estimated network contribution per mile (the OLS slope), ms/mile.
    pub slope_ms_per_mile: f64,
}

impl FetchFactoring {
    /// Converts the slope into the paper's constant `C` under an assumed
    /// per-mile RTT (ms RTT per great-circle mile, path inflation
    /// included).
    pub fn c_estimate(&self, rtt_ms_per_mile: f64) -> f64 {
        assert!(rtt_ms_per_mile > 0.0);
        self.slope_ms_per_mile / rtt_ms_per_mile
    }

    /// True when the OLS and Theil–Sen answers agree within the given
    /// relative tolerance — a robustness check on the fit.
    pub fn is_robust(&self, rel_tol: f64) -> bool {
        let s_ok = if self.fit.slope.abs() < 1e-12 {
            self.robust.slope.abs() < 1e-12
        } else {
            ((self.fit.slope - self.robust.slope) / self.fit.slope).abs() <= rel_tol
        };
        let i_ok = if self.fit.intercept.abs() < 1e-9 {
            true
        } else {
            ((self.fit.intercept - self.robust.intercept) / self.fit.intercept).abs() <= rel_tol
        };
        s_ok && i_ok
    }
}

/// Factors the fetch time from `(distance_miles, tdynamic_ms)` points.
/// The caller is responsible for restricting to small-RTT clients (where
/// `Tdynamic ≈ Tfetch`). Returns `None` for fewer than 3 points or
/// degenerate geometry.
pub fn factor_fetch_time(points: &[(f64, f64)]) -> Option<FetchFactoring> {
    if points.len() < 3 {
        return None;
    }
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let fit = ols(&xs, &ys)?;
    let robust = theil_sen(&xs, &ys)?;
    Some(FetchFactoring {
        fit,
        robust,
        tproc_ms: fit.intercept,
        slope_ms_per_mile: fit.slope,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 9(a) numbers: y = 0.08·x + 250 (Bing).
    #[test]
    fn recovers_paper_bing_line() {
        let points: Vec<(f64, f64)> = (0..40)
            .map(|i| {
                let d = i as f64 * 10.0;
                (d, 0.08 * d + 250.0)
            })
            .collect();
        let f = factor_fetch_time(&points).unwrap();
        assert!((f.tproc_ms - 250.0).abs() < 1.0);
        assert!((f.slope_ms_per_mile - 0.08).abs() < 1e-6);
        assert!(f.is_robust(0.01));
    }

    /// Fig. 9(b): y = 0.099·x + 34 (Google).
    #[test]
    fn recovers_paper_google_line() {
        let points: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let d = i as f64 * 10.0;
                (d, 0.099 * d + 34.0)
            })
            .collect();
        let f = factor_fetch_time(&points).unwrap();
        assert!((f.tproc_ms - 34.0).abs() < 0.5);
        assert!((f.slope_ms_per_mile - 0.099).abs() < 1e-6);
    }

    #[test]
    fn c_estimate_inverts_slope() {
        let points: Vec<(f64, f64)> = (0..20)
            .map(|i| (i as f64 * 20.0, 0.066 * i as f64 * 20.0 + 100.0))
            .collect();
        let f = factor_fetch_time(&points).unwrap();
        // slope 0.066 at rtt 0.033 ms/mile → C = 2.
        let c = f.c_estimate(0.033);
        assert!((c - 2.0).abs() < 0.05, "C {c}");
    }

    #[test]
    fn outliers_break_plain_ols_but_not_the_robust_check() {
        let mut points: Vec<(f64, f64)> = (0..30)
            .map(|i| (i as f64 * 15.0, 0.08 * i as f64 * 15.0 + 200.0))
            .collect();
        points[5].1 = 5_000.0; // one overloaded-FE outlier
        let f = factor_fetch_time(&points).unwrap();
        // The robust estimate stays near truth:
        assert!((f.robust.intercept - 200.0).abs() < 30.0);
        // ... while OLS drifts — and the robustness check flags it.
        assert!(!f.is_robust(0.10));
    }

    #[test]
    fn too_few_points_is_none() {
        assert!(factor_fetch_time(&[(0.0, 1.0), (1.0, 2.0)]).is_none());
    }

    #[test]
    fn vertical_geometry_is_none() {
        let pts = vec![(5.0, 1.0), (5.0, 2.0), (5.0, 3.0)];
        assert!(factor_fetch_time(&pts).is_none());
    }
}
