//! The RTT threshold estimator — the paper's placement trade-off made
//! quantitative.
//!
//! Fig. 5(c): `Tdelta` decreases linearly with RTT and "becomes zero when
//! RTT is beyond a certain threshold (for Google, this threshold is
//! around 50 ms to 100 ms, for Bing, around 100 ms to 200 ms)". Below
//! the threshold, end-to-end performance is pinned by `Tfetch`; moving
//! FEs closer than that buys nothing. The estimator recovers the
//! threshold from `(RTT, Tdelta)` points in two independent ways:
//!
//! 1. **linear x-intercept** — fit the strictly positive `Tdelta` points
//!    (the paper's "decreases linearly with RTT" regime) and intersect
//!    with zero;
//! 2. **binned first-zero** — bin by RTT and find the first bin whose
//!    median `Tdelta` is ~0, never to rise again.
//!
//! Agreement between the two is a model check in itself.

use stats::quantile::median;
use stats::regress::ols;

/// A threshold estimate with both methods' answers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RttThreshold {
    /// X-intercept of the linear fit to the positive-`Tdelta` regime.
    pub linear_intercept_ms: Option<f64>,
    /// First RTT bin whose median `Tdelta` is (and stays) ≈ 0.
    pub binned_first_zero_ms: Option<f64>,
    /// Slope of the positive-regime fit (the model predicts ≈ −1).
    pub linear_slope: Option<f64>,
}

/// Estimates the `Tdelta → 0` RTT threshold from `(rtt_ms, tdelta_ms)`
/// points (typically per-vantage medians).
///
/// `eps_ms` defines "zero" (measurement noise floor); `bin_ms` the bin
/// width of the second method.
pub fn estimate_rtt_threshold(points: &[(f64, f64)], eps_ms: f64, bin_ms: f64) -> RttThreshold {
    assert!(bin_ms > 0.0 && eps_ms >= 0.0);
    // ---- method 1: linear fit on the positive regime ----
    let positive: (Vec<f64>, Vec<f64>) = points
        .iter()
        .filter(|(_, d)| *d > eps_ms)
        .map(|&(r, d)| (r, d))
        .unzip();
    let fit = ols(&positive.0, &positive.1);
    let (linear_intercept_ms, linear_slope) = match fit {
        Some(f) if f.slope < 0.0 => (Some(-f.intercept / f.slope), Some(f.slope)),
        Some(f) => (None, Some(f.slope)),
        None => (None, None),
    };
    // ---- method 2: binned first persistent zero ----
    let binned_first_zero_ms = binned_first_zero(points, eps_ms, bin_ms);
    RttThreshold {
        linear_intercept_ms,
        binned_first_zero_ms,
        linear_slope,
    }
}

fn binned_first_zero(points: &[(f64, f64)], eps_ms: f64, bin_ms: f64) -> Option<f64> {
    if points.is_empty() {
        return None;
    }
    let max_rtt = points.iter().map(|p| p.0).fold(0.0_f64, f64::max);
    let nbins = (max_rtt / bin_ms).ceil() as usize + 1;
    let mut bins: Vec<Vec<f64>> = vec![Vec::new(); nbins];
    for &(r, d) in points {
        let idx = ((r / bin_ms) as usize).min(nbins - 1);
        bins[idx].push(d);
    }
    let medians: Vec<Option<f64>> = bins.iter().map(|b| median(b)).collect();
    // First non-empty bin whose median ≤ eps and all later non-empty
    // bins stay ≤ eps.
    for (i, m) in medians.iter().enumerate() {
        if let Some(v) = m {
            if *v <= eps_ms {
                let later_ok = medians[i + 1..]
                    .iter()
                    .flatten()
                    .all(|&later| later <= eps_ms);
                if later_ok {
                    return Some((i as f64 + 0.5) * bin_ms);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic Fig. 5(c): Tdelta = max(0, 120 − rtt).
    fn synthetic(noise: f64) -> Vec<(f64, f64)> {
        (0..60)
            .map(|i| {
                let rtt = i as f64 * 4.0;
                let jitter = if i % 2 == 0 { noise } else { -noise };
                ((rtt), (120.0 - rtt + jitter).max(0.0))
            })
            .collect()
    }

    #[test]
    fn recovers_known_threshold_both_ways() {
        let est = estimate_rtt_threshold(&synthetic(0.0), 1.0, 20.0);
        let lin = est.linear_intercept_ms.unwrap();
        assert!((lin - 120.0).abs() < 5.0, "linear {lin}");
        let bin = est.binned_first_zero_ms.unwrap();
        assert!((bin - 130.0).abs() <= 20.0, "binned {bin}");
        let slope = est.linear_slope.unwrap();
        assert!((slope + 1.0).abs() < 0.05, "slope {slope}");
    }

    #[test]
    fn robust_to_noise() {
        let est = estimate_rtt_threshold(&synthetic(5.0), 6.0, 20.0);
        let lin = est.linear_intercept_ms.unwrap();
        assert!((lin - 120.0).abs() < 15.0, "linear {lin}");
    }

    #[test]
    fn no_threshold_when_tdelta_never_reaches_zero() {
        // Fetch so slow that even the largest RTT leaves Tdelta > 0.
        let points: Vec<(f64, f64)> = (0..30)
            .map(|i| (i as f64 * 5.0, 400.0 - i as f64 * 5.0))
            .collect();
        let est = estimate_rtt_threshold(&points, 1.0, 20.0);
        assert!(est.binned_first_zero_ms.is_none());
        // The linear method extrapolates (that is its value: it predicts
        // the threshold even when not reached).
        let lin = est.linear_intercept_ms.unwrap();
        assert!((lin - 400.0).abs() < 10.0);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let est = estimate_rtt_threshold(&[], 1.0, 20.0);
        assert!(est.linear_intercept_ms.is_none());
        assert!(est.binned_first_zero_ms.is_none());
        // All-zero Tdelta (every vantage beyond threshold).
        let zeros: Vec<(f64, f64)> = (0..10).map(|i| (i as f64 * 10.0, 0.0)).collect();
        let est2 = estimate_rtt_threshold(&zeros, 1.0, 20.0);
        assert!(est2.linear_intercept_ms.is_none());
        assert_eq!(est2.binned_first_zero_ms, Some(10.0));
    }

    #[test]
    fn positive_slope_yields_no_intercept() {
        let points: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 10.0 + i as f64)).collect();
        let est = estimate_rtt_threshold(&points, 0.5, 10.0);
        assert!(est.linear_intercept_ms.is_none());
        assert!(est.linear_slope.unwrap() > 0.0);
    }
}
