//! The "do FE servers cache search results?" detector (Sec. 3).
//!
//! The paper's probe: submit (a) the *same* query repeatedly and (b)
//! all-*distinct* queries to a fixed FE, and compare the `Tdynamic`
//! distributions. If the FE cached results, repeated queries would skip
//! the BE fetch entirely and their `Tdynamic` would collapse toward the
//! static-delivery timescale — the two distributions would separate
//! sharply. The paper finds them indistinguishable and concludes FEs do
//! not cache ("most search engines attempt to personalize search results
//! for individual users").

use stats::ks::{ks_test, KsVerdict};

/// The detector's verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CachingVerdict {
    /// Repeated-query and distinct-query `Tdynamic` distributions are
    /// statistically indistinguishable: no FE result caching.
    NoCaching,
    /// Repeated queries are significantly *faster*: FE result caching
    /// (or an equivalent shortcut) detected.
    CachingSuspected,
    /// Distributions differ but repeats are not faster — something else
    /// (load drift, path change) is going on; no caching conclusion.
    Inconclusive,
}

/// Result of the caching probe comparison.
#[derive(Clone, Copy, Debug)]
pub struct CachingProbe {
    /// KS distance between the two samples.
    pub ks_distance: f64,
    /// Median `Tdynamic` of repeated-query samples, ms.
    pub median_same_ms: f64,
    /// Median `Tdynamic` of distinct-query samples, ms.
    pub median_distinct_ms: f64,
    /// The verdict.
    pub verdict: CachingVerdict,
}

/// Compares `Tdynamic` samples of repeated-identical queries against
/// all-distinct queries to the same FE. Returns `None` if either sample
/// is empty.
pub fn caching_verdict(same_query_ms: &[f64], distinct_query_ms: &[f64]) -> Option<CachingProbe> {
    let (d, ks) = ks_test(same_query_ms, distinct_query_ms)?;
    let median_same = stats::quantile::median(same_query_ms)?;
    let median_distinct = stats::quantile::median(distinct_query_ms)?;
    let verdict = match ks {
        KsVerdict::Indistinguishable => CachingVerdict::NoCaching,
        KsVerdict::Distinct => {
            // Caching manifests as repeats being *much faster* — require
            // a material gap, not just statistical distinctness.
            if median_same < 0.7 * median_distinct {
                CachingVerdict::CachingSuspected
            } else {
                CachingVerdict::Inconclusive
            }
        }
    };
    Some(CachingProbe {
        ks_distance: d,
        median_same_ms: median_same,
        median_distinct_ms: median_distinct,
        verdict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn around(center: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| center + ((i * 7919) % 100) as f64 / 10.0 - 5.0)
            .collect()
    }

    #[test]
    fn similar_distributions_mean_no_caching() {
        let same = around(180.0, 300);
        let distinct = around(181.0, 300);
        let probe = caching_verdict(&same, &distinct).unwrap();
        assert_eq!(probe.verdict, CachingVerdict::NoCaching);
        assert!(probe.ks_distance < 0.2);
    }

    #[test]
    fn collapsed_repeats_mean_caching() {
        let same = around(30.0, 300); // cache hits: no fetch
        let distinct = around(180.0, 300);
        let probe = caching_verdict(&same, &distinct).unwrap();
        assert_eq!(probe.verdict, CachingVerdict::CachingSuspected);
        assert!(probe.median_same_ms < probe.median_distinct_ms);
    }

    #[test]
    fn slower_repeats_are_inconclusive_not_caching() {
        let same = around(300.0, 300); // repeats slower — load drift
        let distinct = around(180.0, 300);
        let probe = caching_verdict(&same, &distinct).unwrap();
        assert_eq!(probe.verdict, CachingVerdict::Inconclusive);
    }

    #[test]
    fn empty_samples_yield_none() {
        assert!(caching_verdict(&[], &[1.0]).is_none());
        assert!(caching_verdict(&[1.0], &[]).is_none());
    }
}
