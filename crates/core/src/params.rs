//! The measurable per-query quantities.

use capture::Timeline;

/// The paper's per-query measurement vector, extracted from one
/// [`Timeline`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryParams {
    /// Handshake RTT estimate between client and FE, in ms.
    pub rtt_ms: f64,
    /// `Tstatic := t4 − t2` — bounds the FE-side processing and delivery
    /// of the static portion.
    pub t_static_ms: f64,
    /// `Tdynamic := t5 − t2` — upper-bounds the fetch time.
    pub t_dynamic_ms: f64,
    /// `Tdelta := t5 − t4` — lower-bounds the fetch time (0 when the
    /// portions coalesce).
    pub t_delta_ms: f64,
    /// Overall user-perceived delay `te − tb`.
    pub overall_ms: f64,
    /// Static bytes identified by the classifier (sanity signal: should
    /// be stable across queries to one service).
    pub static_bytes: u64,
    /// Total response payload bytes.
    pub total_bytes: u64,
}

impl QueryParams {
    /// Derives the parameters from an extracted timeline.
    pub fn from_timeline(tl: &Timeline) -> QueryParams {
        QueryParams {
            rtt_ms: tl.rtt_ms,
            t_static_ms: tl.t_static_ms(),
            t_dynamic_ms: tl.t_dynamic_ms(),
            t_delta_ms: tl.t_delta_ms(),
            overall_ms: tl.overall_ms(),
            static_bytes: tl.static_bytes,
            total_bytes: tl.total_bytes,
        }
    }

    /// Internal consistency: `Tdynamic = Tstatic + Tdelta` (identity of
    /// the definitions, up to the zero-clamp on `Tdelta`).
    pub fn is_consistent(&self, tol_ms: f64) -> bool {
        if self.t_delta_ms > 0.0 {
            (self.t_dynamic_ms - (self.t_static_ms + self.t_delta_ms)).abs() <= tol_ms
        } else {
            // Coalesced: t5 ≤ t4, so Tdynamic ≤ Tstatic.
            self.t_dynamic_ms <= self.t_static_ms + tol_ms
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(rtt: f64, ts: f64, td: f64) -> QueryParams {
        QueryParams {
            rtt_ms: rtt,
            t_static_ms: ts,
            t_dynamic_ms: td,
            t_delta_ms: (td - ts).max(0.0),
            overall_ms: td + 100.0,
            static_bytes: 9000,
            total_bytes: 30000,
        }
    }

    #[test]
    fn identity_holds_in_separated_regime() {
        let p = params(20.0, 30.0, 180.0);
        assert!(p.is_consistent(1e-9));
        assert_eq!(p.t_delta_ms, 150.0);
    }

    #[test]
    fn identity_holds_in_coalesced_regime() {
        let p = QueryParams {
            rtt_ms: 200.0,
            t_static_ms: 210.0,
            t_dynamic_ms: 208.0, // first dynamic slightly before last static
            t_delta_ms: 0.0,
            overall_ms: 600.0,
            static_bytes: 9000,
            total_bytes: 30000,
        };
        assert!(p.is_consistent(1e-9));
    }

    #[test]
    fn inconsistency_detected() {
        let p = QueryParams {
            rtt_ms: 20.0,
            t_static_ms: 30.0,
            t_dynamic_ms: 500.0,
            t_delta_ms: 10.0, // should be 470
            overall_ms: 700.0,
            static_bytes: 9000,
            total_bytes: 30000,
        };
        assert!(!p.is_consistent(1.0));
    }
}
