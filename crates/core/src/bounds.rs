//! The fetch-time bracket — Eq. (1) of the paper.
//!
//! `Tfetch` (forward the query to the BE + generate the response +
//! deliver it to the FE) is invisible at the client. Eq. (1) brackets it
//! with two client-side observables:
//!
//! ```text
//! Tdelta ≤ Tfetch ≤ Tdynamic
//! ```
//!
//! The upper bound is loose by the FE service overhead plus half an
//! access RTT; the lower bound degrades to 0 once the static delivery
//! outlasts the fetch. The *small-RTT* regime is therefore where the
//! bracket is informative — which is why Fig. 9 restricts itself to
//! vantage points near the FE ("for smaller values of RTT, Tdynamic can
//! be considered as an approximation for the Tfetch").

use crate::params::QueryParams;

/// A bracket on the unobservable fetch time, in ms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FetchBounds {
    /// Lower bound (`Tdelta`).
    pub lower_ms: f64,
    /// Upper bound (`Tdynamic`).
    pub upper_ms: f64,
}

impl FetchBounds {
    /// Derives the bracket from one query's parameters.
    pub fn from_params(p: &QueryParams) -> FetchBounds {
        FetchBounds {
            lower_ms: p.t_delta_ms,
            upper_ms: p.t_dynamic_ms,
        }
    }

    /// Bracket width (how informative the bound is).
    pub fn width_ms(&self) -> f64 {
        (self.upper_ms - self.lower_ms).max(0.0)
    }

    /// True if a candidate fetch time is inside the bracket (with
    /// tolerance for measurement noise).
    pub fn contains(&self, fetch_ms: f64, tol_ms: f64) -> bool {
        fetch_ms >= self.lower_ms - tol_ms && fetch_ms <= self.upper_ms + tol_ms
    }

    /// The midpoint — a crude point estimate when only one query is
    /// available.
    pub fn midpoint_ms(&self) -> f64 {
        0.5 * (self.lower_ms + self.upper_ms)
    }

    /// Combines brackets from repeated queries to one FE: the fetch time
    /// is (modeled as) a stable quantity, so the intersection of
    /// per-query brackets tightens the estimate — `max` of lowers, `min`
    /// of uppers. Returns `None` for empty input or an empty
    /// intersection (which falsifies the stability assumption).
    pub fn intersect_all(bounds: &[FetchBounds]) -> Option<FetchBounds> {
        let mut lo = f64::NEG_INFINITY;
        let mut hi = f64::INFINITY;
        if bounds.is_empty() {
            return None;
        }
        for b in bounds {
            lo = lo.max(b.lower_ms);
            hi = hi.min(b.upper_ms);
        }
        if lo <= hi {
            Some(FetchBounds {
                lower_ms: lo,
                upper_ms: hi,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: f64, hi: f64) -> FetchBounds {
        FetchBounds {
            lower_ms: lo,
            upper_ms: hi,
        }
    }

    #[test]
    fn bracket_from_params() {
        let p = QueryParams {
            rtt_ms: 10.0,
            t_static_ms: 25.0,
            t_dynamic_ms: 180.0,
            t_delta_ms: 155.0,
            overall_ms: 400.0,
            static_bytes: 9000,
            total_bytes: 30000,
        };
        let fb = FetchBounds::from_params(&p);
        assert_eq!(fb.lower_ms, 155.0);
        assert_eq!(fb.upper_ms, 180.0);
        assert_eq!(fb.width_ms(), 25.0);
        assert!(fb.contains(170.0, 0.0));
        assert!(!fb.contains(150.0, 0.0));
        assert!(fb.contains(150.0, 6.0));
        assert_eq!(fb.midpoint_ms(), 167.5);
    }

    #[test]
    fn intersection_tightens() {
        let combined =
            FetchBounds::intersect_all(&[b(100.0, 200.0), b(150.0, 220.0), b(120.0, 190.0)])
                .unwrap();
        assert_eq!(combined.lower_ms, 150.0);
        assert_eq!(combined.upper_ms, 190.0);
    }

    #[test]
    fn empty_intersection_is_none() {
        assert!(FetchBounds::intersect_all(&[b(100.0, 120.0), b(200.0, 250.0)]).is_none());
        assert!(FetchBounds::intersect_all(&[]).is_none());
    }

    #[test]
    fn degenerate_lower_bound_zero() {
        // Coalesced regime: Tdelta = 0, the bracket is [0, Tdynamic].
        let fb = b(0.0, 250.0);
        assert!(fb.contains(100.0, 0.0));
        assert_eq!(fb.width_ms(), 250.0);
    }
}
