//! The abstract model of Sec. 2, as executable predictions.
//!
//! The paper's model reduces the client-observed dynamics to three
//! parameters: the client↔FE RTT, the (per-FE constant) fetch time
//! `Tfetch`, and the FE-side static service/serialization time `c`.
//! Its predictions:
//!
//! ```text
//! Tstatic(RTT)  ≈ c + k·RTT          (k = number of extra ACK-clocked
//!                                     window rounds the static burst
//!                                     needs beyond the initial window)
//! Tdynamic(RTT) ≈ max(Tfetch, Tstatic(RTT))
//! Tdelta(RTT)   ≈ max(0, Tfetch − Tstatic(RTT))
//! threshold RTT*: Tstatic(RTT*) = Tfetch  ⇔  RTT* = (Tfetch − c) / k
//! ```
//!
//! These functions exist so the simulation-driven tests can check the
//! *measured* curves against the *predicted* ones — the paper's own
//! validation methodology ("the observations therefore match the
//! prediction by our simple abstract model").

/// The model's free parameters for one (FE, service) pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelPrediction {
    /// FE-side constant of the static delivery (service time +
    /// serialization), ms.
    pub c_ms: f64,
    /// Extra ACK-clocked rounds the static burst needs beyond the
    /// initial window (1 for the default static size / IW combination).
    pub k_rounds: f64,
    /// The FE↔BE fetch time, ms.
    pub t_fetch_ms: f64,
}

impl ModelPrediction {
    /// Predicted `Tstatic` at a given client↔FE RTT.
    pub fn t_static_ms(&self, rtt_ms: f64) -> f64 {
        self.c_ms + self.k_rounds * rtt_ms
    }

    /// Predicted `Tdynamic` at a given RTT: fetch-limited at small RTT,
    /// window-pacing-limited at large RTT.
    pub fn t_dynamic_ms(&self, rtt_ms: f64) -> f64 {
        self.t_fetch_ms.max(self.t_static_ms(rtt_ms))
    }

    /// Predicted `Tdelta` at a given RTT.
    pub fn t_delta_ms(&self, rtt_ms: f64) -> f64 {
        (self.t_fetch_ms - self.t_static_ms(rtt_ms)).max(0.0)
    }

    /// The RTT threshold beyond which `Tdelta = 0` and FE proximity no
    /// longer helps. `None` when the static constant alone exceeds the
    /// fetch time (always merged) or `k = 0` (static never paces).
    pub fn rtt_threshold_ms(&self) -> Option<f64> {
        if self.k_rounds <= 0.0 {
            return None;
        }
        let t = (self.t_fetch_ms - self.c_ms) / self.k_rounds;
        if t > 0.0 {
            Some(t)
        } else {
            None
        }
    }

    /// The model identity `Tdynamic = Tstatic + Tdelta` (holds exactly in
    /// the un-merged regime, and as `Tdynamic = Tstatic` when merged).
    pub fn identity_holds(&self, rtt_ms: f64, tol: f64) -> bool {
        let lhs = self.t_dynamic_ms(rtt_ms);
        let rhs = if self.t_delta_ms(rtt_ms) > 0.0 {
            self.t_static_ms(rtt_ms) + self.t_delta_ms(rtt_ms)
        } else {
            self.t_static_ms(rtt_ms)
        };
        (lhs - rhs).abs() <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn google_ish() -> ModelPrediction {
        ModelPrediction {
            c_ms: 8.0,
            k_rounds: 1.0,
            t_fetch_ms: 80.0,
        }
    }

    fn bing_ish() -> ModelPrediction {
        ModelPrediction {
            c_ms: 20.0,
            k_rounds: 1.0,
            t_fetch_ms: 190.0,
        }
    }

    #[test]
    fn small_rtt_regime_is_fetch_limited() {
        let m = google_ish();
        assert_eq!(m.t_dynamic_ms(10.0), 80.0);
        assert_eq!(m.t_dynamic_ms(30.0), 80.0);
        assert!(m.t_delta_ms(10.0) > m.t_delta_ms(30.0));
    }

    #[test]
    fn large_rtt_regime_is_pacing_limited() {
        let m = google_ish();
        assert_eq!(m.t_delta_ms(200.0), 0.0);
        assert_eq!(m.t_dynamic_ms(200.0), 208.0);
        // Linear growth with slope k.
        assert_eq!(m.t_dynamic_ms(250.0) - m.t_dynamic_ms(200.0), 50.0);
    }

    #[test]
    fn thresholds_match_paper_ordering() {
        let g = google_ish().rtt_threshold_ms().unwrap();
        let b = bing_ish().rtt_threshold_ms().unwrap();
        assert!((g - 72.0).abs() < 1e-9);
        assert!((b - 170.0).abs() < 1e-9);
        // Paper: Google's threshold (50–100 ms) is below Bing's
        // (100–200 ms) because Google's fetch time is smaller.
        assert!(g < b);
        assert!((50.0..=100.0).contains(&g));
        assert!((100.0..=200.0).contains(&b));
    }

    #[test]
    fn tdelta_slope_is_minus_k() {
        let m = google_ish();
        let slope = (m.t_delta_ms(40.0) - m.t_delta_ms(20.0)) / 20.0;
        assert_eq!(slope, -1.0);
    }

    #[test]
    fn identity_everywhere() {
        let m = bing_ish();
        for rtt in [0.0, 25.0, 100.0, 170.0, 200.0, 400.0] {
            assert!(m.identity_holds(rtt, 1e-9), "rtt {rtt}");
        }
    }

    #[test]
    fn no_threshold_when_fetch_below_constant() {
        let m = ModelPrediction {
            c_ms: 50.0,
            k_rounds: 1.0,
            t_fetch_ms: 40.0,
        };
        assert_eq!(m.rtt_threshold_ms(), None);
        assert_eq!(m.t_delta_ms(0.0), 0.0);
    }

    #[test]
    fn zero_k_never_thresholds() {
        let m = ModelPrediction {
            c_ms: 5.0,
            k_rounds: 0.0,
            t_fetch_ms: 100.0,
        };
        assert_eq!(m.rtt_threshold_ms(), None);
        // Tdelta constant in RTT.
        assert_eq!(m.t_delta_ms(10.0), m.t_delta_ms(300.0));
    }
}
