//! # inference — the paper's model-based inference framework
//!
//! The primary contribution of *Characterizing Roles of Front-end Servers
//! in End-to-End Performance of Dynamic Content Distribution* (IMC 2011)
//! is not a measurement dataset but a **method**: from client-side packet
//! timelines alone, quantify the directly unobservable FE↔BE fetch time
//! and factor it into back-end processing and network delivery. This
//! crate is that method as a reusable library:
//!
//! * [`params`] — the measurable quantities: `Tstatic := t4 − t2`,
//!   `Tdynamic := t5 − t2`, `Tdelta := t5 − t4`;
//! * [`bounds`] — the fetch-time bracket of Eq. (1):
//!   `Tdelta ≤ Tfetch ≤ Tdynamic`;
//! * [`aggregate`] — per-vantage/per-FE medians (every Fig. 5/7 point is
//!   a per-node median over repeats);
//! * [`threshold`] — the RTT threshold beyond which `Tdelta = 0` and
//!   further FE proximity buys nothing (the paper's placement/fetch-time
//!   trade-off);
//! * [`factoring`] — Eq. (2), `Tfetch = Tproc + C·RTTbe`: regression of
//!   `Tdynamic` against FE↔BE distance whose intercept estimates `Tproc`
//!   and whose slope captures the network term (Fig. 9);
//! * [`caching`] — the Sec. 3 detector: do FEs cache search results?
//!   (two-sample comparison of repeated-query vs distinct-query
//!   `Tdynamic` distributions);
//! * [`coords`] — the reviewer-suggested extension: a Vivaldi network-
//!   coordinate embedding that estimates the FE↔BE RTT directly, giving
//!   a regression-free `Tproc` heuristic;
//! * [`model`] — the abstract model itself, as executable predictions
//!   that the simulation-driven tests verify.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod bounds;
pub mod caching;
pub mod coords;
pub mod factoring;
pub mod model;
pub mod params;
pub mod threshold;

pub use aggregate::{per_group_medians, GroupMedians, GroupMediansAcc, SessionTally};
pub use bounds::FetchBounds;
pub use caching::{caching_verdict, CachingVerdict};
pub use coords::{tproc_via_coords, RttSample, Vivaldi};
pub use factoring::{factor_fetch_time, FetchFactoring};
pub use model::ModelPrediction;
pub use params::QueryParams;
pub use threshold::estimate_rtt_threshold;
