//! Per-group (per-vantage, per-FE) aggregation.
//!
//! Every point in the paper's Figs. 5 and 7 is a *median over the
//! repeated queries of one PlanetLab node*; the medians suppress
//! short-term fluctuation ("as the performance is susceptible to
//! short-term fluctuations"). [`per_group_medians`] reproduces that
//! reduction.

use crate::params::QueryParams;
use stats::quantile::Summary;
use stats::streaming::{QuantileAcc, SummaryAcc};
use std::collections::BTreeMap;

/// The per-group medians of all measurement quantities.
#[derive(Clone, Debug)]
pub struct GroupMedians {
    /// Group key (vantage id, FE id — caller-defined).
    pub group: u64,
    /// Number of samples in the group.
    pub n: usize,
    /// Median handshake RTT (ms).
    pub rtt_ms: f64,
    /// Median `Tstatic` (ms).
    pub t_static_ms: f64,
    /// Median `Tdynamic` (ms).
    pub t_dynamic_ms: f64,
    /// Median `Tdelta` (ms).
    pub t_delta_ms: f64,
    /// Median overall delay (ms).
    pub overall_ms: f64,
    /// Full distribution summary of the overall delay (for the Fig. 8
    /// box plots).
    pub overall_summary: Summary,
}

/// Robustness bookkeeping for one collection run.
///
/// Real measurement campaigns lose sessions — vantage points crash,
/// servers time out, retransmission storms make timings meaningless. The
/// pipeline must *skip but count*: excluded sessions never silently
/// vanish. Outcome counts come from ground truth (what happened to the
/// query); `skipped` counts sessions whose client-side timeline could
/// not be extracted, independent of outcome.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionTally {
    /// Clean first-attempt successes.
    pub ok: usize,
    /// Degraded responses (error stub in place of dynamic content).
    pub degraded: usize,
    /// Successes that needed at least one client retry.
    pub retried: usize,
    /// Queries that exhausted their retry budget.
    pub timed_out: usize,
    /// Queries rejected by FE admission control (load shedding) on
    /// their final attempt.
    pub shed: usize,
    /// Sessions excluded from inference because timeline extraction
    /// failed (truncated, no handshake, retransmission-heavy, …).
    pub skipped: usize,
}

impl SessionTally {
    /// Total sessions observed (excluded ones included).
    pub fn total(&self) -> usize {
        self.ok + self.degraded + self.retried + self.timed_out + self.shed
    }

    /// Fraction of observed sessions that made it into the inference
    /// input (1.0 when nothing was skipped; 0.0 for an empty run).
    pub fn usable_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (total - self.skipped.min(total)) as f64 / total as f64
    }

    /// Adds another tally's counts — shard tallies merge in descriptor
    /// order like every other streaming reducer.
    pub fn merge(&mut self, other: &SessionTally) {
        self.ok += other.ok;
        self.degraded += other.degraded;
        self.retried += other.retried;
        self.timed_out += other.timed_out;
        self.shed += other.shed;
        self.skipped += other.skipped;
    }
}

/// Streaming per-group aggregation: the online counterpart of
/// [`per_group_medians`]. Each group folds its five measurement columns
/// into quantile accumulators as samples arrive; [`finish`] reduces to
/// the same [`GroupMedians`] records the batch path produced —
/// bit-identically in exact mode, because the accumulators sort and
/// delegate to the very batch helpers the old code called.
///
/// [`finish`]: GroupMediansAcc::finish
#[derive(Clone, Debug)]
pub struct GroupMediansAcc {
    groups: BTreeMap<u64, GroupAcc>,
    cap: Option<usize>,
}

#[derive(Clone, Debug)]
struct GroupAcc {
    rtt: QuantileAcc,
    t_static: QuantileAcc,
    t_dynamic: QuantileAcc,
    t_delta: QuantileAcc,
    overall: SummaryAcc,
}

impl GroupAcc {
    fn new(cap: Option<usize>) -> GroupAcc {
        let q = || match cap {
            None => QuantileAcc::exact(),
            Some(c) => QuantileAcc::with_cap(c),
        };
        GroupAcc {
            rtt: q(),
            t_static: q(),
            t_dynamic: q(),
            t_delta: q(),
            overall: match cap {
                None => SummaryAcc::exact(),
                Some(c) => SummaryAcc::with_cap(c),
            },
        }
    }
}

impl GroupMediansAcc {
    /// Exact accumulators (bit-identical to the batch reduction; memory
    /// grows with samples per group). The figure harnesses use this.
    pub fn exact() -> GroupMediansAcc {
        GroupMediansAcc {
            groups: BTreeMap::new(),
            cap: None,
        }
    }

    /// Capped accumulators that sketch beyond `cap` samples per group
    /// column — bounded memory for production-scale campaigns.
    pub fn with_cap(cap: usize) -> GroupMediansAcc {
        GroupMediansAcc {
            groups: BTreeMap::new(),
            cap: Some(cap),
        }
    }

    /// Folds one sample into `key`'s group.
    pub fn push(&mut self, key: u64, p: &QueryParams) {
        let cap = self.cap;
        let g = self.groups.entry(key).or_insert_with(|| GroupAcc::new(cap));
        g.rtt.push(p.rtt_ms);
        g.t_static.push(p.t_static_ms);
        g.t_dynamic.push(p.t_dynamic_ms);
        g.t_delta.push(p.t_delta_ms);
        g.overall.push(p.overall_ms);
    }

    /// Merges per-key (concatenation order within each key).
    pub fn merge(&mut self, other: &GroupMediansAcc) {
        for (k, g) in &other.groups {
            match self.groups.get_mut(k) {
                Some(mine) => {
                    mine.rtt.merge(&g.rtt);
                    mine.t_static.merge(&g.t_static);
                    mine.t_dynamic.merge(&g.t_dynamic);
                    mine.t_delta.merge(&g.t_delta);
                    mine.overall.merge(&g.overall);
                }
                None => {
                    self.groups.insert(*k, g.clone());
                }
            }
        }
    }

    /// Number of distinct groups so far.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True before the first sample.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Bytes retained across all group buffers.
    pub fn retained_bytes(&self) -> usize {
        self.groups
            .values()
            .map(|g| {
                g.rtt.retained_bytes()
                    + g.t_static.retained_bytes()
                    + g.t_dynamic.retained_bytes()
                    + g.t_delta.retained_bytes()
                    + g.overall.retained_bytes()
            })
            .sum()
    }

    /// Reduces to per-group medians in ascending key order.
    pub fn finish(&self) -> Vec<GroupMedians> {
        self.groups
            .iter()
            .map(|(&group, g)| GroupMedians {
                group,
                n: g.overall.count() as usize,
                rtt_ms: g.rtt.median().unwrap(),
                t_static_ms: g.t_static.median().unwrap(),
                t_dynamic_ms: g.t_dynamic.median().unwrap(),
                t_delta_ms: g.t_delta.median().unwrap(),
                overall_ms: g.overall.summary().map(|s| s.median).unwrap(),
                overall_summary: g.overall.summary().unwrap(),
            })
            .collect()
    }
}

/// Groups samples by a key and reduces each group to its medians.
/// Groups are returned in ascending key order (deterministic output for
/// the figure harnesses).
pub fn per_group_medians(samples: &[(u64, QueryParams)]) -> Vec<GroupMedians> {
    let mut acc = GroupMediansAcc::exact();
    for (key, p) in samples {
        acc.push(*key, p);
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(rtt: f64, ts: f64, td: f64, overall: f64) -> QueryParams {
        QueryParams {
            rtt_ms: rtt,
            t_static_ms: ts,
            t_dynamic_ms: td,
            t_delta_ms: (td - ts).max(0.0),
            overall_ms: overall,
            static_bytes: 9000,
            total_bytes: 30000,
        }
    }

    #[test]
    fn groups_and_medians() {
        let samples = vec![
            (1, p(10.0, 20.0, 100.0, 300.0)),
            (1, p(10.0, 22.0, 110.0, 320.0)),
            (1, p(10.0, 24.0, 90.0, 310.0)),
            (2, p(50.0, 60.0, 200.0, 500.0)),
        ];
        let groups = per_group_medians(&samples);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].group, 1);
        assert_eq!(groups[0].n, 3);
        assert_eq!(groups[0].t_static_ms, 22.0);
        assert_eq!(groups[0].t_dynamic_ms, 100.0);
        assert_eq!(groups[0].overall_ms, 310.0);
        assert_eq!(groups[1].group, 2);
        assert_eq!(groups[1].n, 1);
        assert_eq!(groups[1].rtt_ms, 50.0);
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut samples: Vec<(u64, QueryParams)> =
            (0..9).map(|_| (1, p(10.0, 20.0, 100.0, 300.0))).collect();
        samples.push((1, p(10.0, 20.0, 100_000.0, 300.0)));
        let groups = per_group_medians(&samples);
        assert_eq!(groups[0].t_dynamic_ms, 100.0);
    }

    #[test]
    fn output_sorted_by_group_key() {
        let samples = vec![
            (9, p(1.0, 2.0, 3.0, 4.0)),
            (3, p(1.0, 2.0, 3.0, 4.0)),
            (7, p(1.0, 2.0, 3.0, 4.0)),
        ];
        let groups = per_group_medians(&samples);
        let keys: Vec<u64> = groups.iter().map(|g| g.group).collect();
        assert_eq!(keys, vec![3, 7, 9]);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(per_group_medians(&[]).is_empty());
    }

    #[test]
    fn tally_totals_and_usable_fraction() {
        let t = SessionTally {
            ok: 5,
            degraded: 1,
            retried: 2,
            timed_out: 1,
            shed: 1,
            skipped: 2,
        };
        assert_eq!(t.total(), 10);
        assert!((t.usable_fraction() - 0.8).abs() < 1e-12);
        assert_eq!(SessionTally::default().total(), 0);
        assert_eq!(SessionTally::default().usable_fraction(), 0.0);
    }

    #[test]
    fn summary_attached_for_boxplots() {
        let samples: Vec<(u64, QueryParams)> = (0..100)
            .map(|i| (1, p(10.0, 20.0, 100.0, 200.0 + i as f64)))
            .collect();
        let g = &per_group_medians(&samples)[0];
        assert_eq!(g.overall_summary.n, 100);
        assert!(g.overall_summary.p25 < g.overall_summary.p75);
    }
}
