//! # fecdn — Characterizing Roles of Front-end Servers in End-to-End
//! Performance of Dynamic Content Distribution
//!
//! A from-scratch Rust reproduction of Chen, Jain, Adhikari & Zhang's
//! IMC 2011 measurement study, built as a deterministic packet-level
//! simulation of the systems the paper measured live, plus the paper's
//! model-based inference framework as a reusable library.
//!
//! ## What's inside
//!
//! | crate | contents |
//! |---|---|
//! | [`simcore`] | discrete-event engine: virtual time, event queue, PRNG streams, distributions |
//! | [`stats`] | medians, moving median, ECDF, box plots, OLS/Theil–Sen, temporal clustering, KS tests |
//! | [`nettopo`] | world geography, PlanetLab-like vantages, FE placements, BE sites, path models |
//! | [`tcpsim`] | packet-level TCP: handshake, slow start, Reno recovery, RTO, delayed ACKs, tracing |
//! | [`httpsim`] | HTTP request/response size & identity accounting |
//! | [`searchbe`] | back-end search model: keyword classes, `Tproc` distributions, page composition |
//! | [`cdnsim`] | FE servers (split TCP, static cache, load/tenancy), DNS mapping, whole services |
//! | [`capture`] | the tcpdump analogue: session slicing, timeline extraction, content analysis |
//! | [`inference`] | **the paper's contribution**: `Tstatic`/`Tdynamic`/`Tdelta`, fetch bounds, thresholds, factoring |
//! | [`emulator`] | the query emulator and the Dataset A/B experiment designs |
//!
//! ## Quickstart
//!
//! ```
//! use fecdn::prelude::*;
//!
//! // A small shared measurement campaign: vantage points + keywords.
//! let scenario = Scenario::small(42);
//!
//! // Build the Google-like service and issue one query.
//! let mut sim = scenario.google_sim();
//! sim.with(|world, net| {
//!     world.schedule_query(
//!         net,
//!         SimDuration::from_millis(1),
//!         QuerySpec { client: 0, keyword: 3, fixed_fe: None, instant_followup: false },
//!     );
//! });
//!
//! // Run to quiescence; extract the paper's parameters from the
//! // client-side packet trace.
//! let queries = run_collect(&mut sim, &Classifier::ByMarker);
//! let q = &queries[0];
//! assert!(q.params.t_dynamic_ms > 0.0);
//!
//! // Eq. (1): the unobservable fetch time is bracketed by observables —
//! // and the simulator knows the truth, so we can check the bracket.
//! let bounds = FetchBounds::from_params(&q.params);
//! assert!(bounds.contains(q.true_fetch_ms.unwrap(), 12.0));
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench/src/bin/`
//! for the per-figure reproduction harnesses.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use capture;
pub use cdnsim;
pub use emulator;
pub use httpsim;
pub use inference;
pub use nettopo;
pub use searchbe;
pub use simcore;
pub use stats;
pub use tcpsim;

/// The common imports for scenario code.
pub mod prelude {
    pub use capture::{Classifier, Timeline};
    pub use cdnsim::{CompletedQuery, QuerySpec, ServiceConfig, ServiceWorld};
    pub use emulator::runner::{run_collect, run_collect_with, ProcessedQuery};
    pub use emulator::Scenario;
    pub use inference::{
        caching_verdict, estimate_rtt_threshold, factor_fetch_time, per_group_medians, FetchBounds,
        ModelPrediction, QueryParams,
    };
    pub use simcore::time::{SimDuration, SimTime};
    pub use tcpsim::{End, Marker, Sim};
}
