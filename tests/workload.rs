//! Determinism conformance for the dynamic-popularity workload
//! generator and the session-slab campaign mode.
//!
//! The contract: a churned-Zipf session campaign is (a) byte-identical
//! at any `FECDN_THREADS`, (b) byte-identical across reruns, pinned by
//! a committed golden, and (c) stable under run reordering — every
//! run's RNG is a named child stream (`stream_seed(campaign seed,
//! label)`), so adding, removing or reordering sibling runs never
//! perturbs a session workload's draws.

mod common;

use emulator::{Campaign, Design, Scenario, SessionFeeder, SessionPlan, SessionWorkload};
use proptest::prelude::*;
use simcore::dist::{PopularityModel, PopularityProcess, Zipf};
use simcore::rng::Rng;
use simcore::time::{SimDuration, SimTime};

/// The golden-pinned workload: shot-noise churn plus a diurnal wave
/// over a Zipf(0.9) catalog, 40 single-query sessions.
fn churned_workload() -> SessionWorkload {
    SessionWorkload::new(40)
        .with_mean_gap(SimDuration::from_millis(200))
        .with_popularity(
            PopularityModel::static_zipf(0.9)
                .with_churn(5.0)
                .with_diurnal(0.3, SimDuration::from_secs(60)),
        )
}

fn churned_campaign(seed: u64) -> Campaign {
    let mut c = Campaign::new(Scenario::small(seed));
    c.push(
        "sessions/churned",
        cdnsim::ServiceConfig::google_like(seed),
        Design::Sessions(churned_workload()),
    );
    c
}

#[test]
fn churned_campaign_is_thread_invariant_and_matches_golden() {
    let serial = churned_campaign(42).execute_with_threads(1).to_tsv();
    let parallel = churned_campaign(42).execute_with_threads(4).to_tsv();
    assert_eq!(serial, parallel, "thread count changed the session TSV");
    common::compare_golden(
        &serial,
        "campaign_churned_seed42.tsv",
        "churned-Zipf session campaign",
    );
    // Rerun determinism: a fresh campaign object reproduces the bytes.
    let again = churned_campaign(42).execute_with_threads(2).to_tsv();
    assert_eq!(serial, again);
}

#[test]
fn session_campaign_accounts_for_every_session() {
    let report = churned_campaign(7).execute_with_threads(2);
    let run = report.get("sessions/churned").unwrap();
    let t = run.tally;
    assert_eq!(t.total(), 40, "accounting leak: {t:?}");
    assert!(run.stats.peak_pending_events > 0, "fed runs track hiwater");
    assert_eq!(
        run.metrics.counter("cdnsim.fe_static_cache_misses"),
        None,
        "unbounded prewarmed static cache must never miss"
    );
}

#[test]
fn feeder_schedule_is_independent_of_feed_batching() {
    // One feeder materialised in a single pass vs. an identical twin
    // stepped in ragged upto increments: the session streams must agree
    // exactly — chunk boundaries never touch the draw order.
    let w = churned_workload();
    let mut whole = SessionFeeder::new(w.clone(), 99, 12, 300);
    let plans: Vec<SessionPlan> = std::iter::from_fn(|| whole.next_session()).collect();
    assert_eq!(plans.len(), 40);

    let mut stepped = SessionFeeder::new(w, 99, 12, 300);
    let mut got: Vec<SessionPlan> = Vec::new();
    let mut upto = SimTime::ZERO;
    while !stepped.exhausted() {
        upto += SimDuration::from_millis(137);
        while stepped.next_start().is_some_and(|t| t <= upto) {
            got.push(stepped.next_session().unwrap());
        }
    }
    assert_eq!(plans, got);
}

#[test]
fn zero_churn_process_is_plain_zipf() {
    // The armed-but-inert half of the workload contract: churn 0 and no
    // flash crowds must reproduce bare Zipf draws exactly, leaving the
    // churn stream untouched.
    let n = 500;
    let zipf = Zipf::new(n, 0.9);
    let mut proc = PopularityProcess::new(
        n,
        PopularityModel::static_zipf(0.9),
        Rng::from_seed_and_name(5, "test/churn"),
    );
    let mut a = Rng::from_seed_and_name(5, "test/draws");
    let mut b = Rng::from_seed_and_name(5, "test/draws");
    for i in 0..2_000u64 {
        let t = SimTime::from_millis(i * 13);
        assert_eq!(proc.sample(t, &mut a), zipf.sample_rank(&mut b) as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Run-reordering stability: the churned session run produces the
    /// same rows whether it executes alone, first, or after an
    /// unrelated sibling — its seed is `stream_seed(campaign, label)`,
    /// a pure function of the label.
    #[test]
    fn session_rows_are_stable_under_run_reordering(seed in 0u64..500) {
        use emulator::dataset_a::{DatasetA, KeywordPolicy};
        let sibling = || Design::DatasetA(DatasetA {
            repeats: 1,
            spacing: SimDuration::from_secs(8),
            keywords: KeywordPolicy::Fixed(0),
        });
        let small = SessionWorkload::new(8)
            .with_mean_gap(SimDuration::from_millis(150))
            .with_popularity(PopularityModel::static_zipf(0.9).with_churn(20.0));

        let mut alone = Campaign::new(Scenario::small(seed));
        alone.push(
            "sessions/reorder",
            cdnsim::ServiceConfig::google_like(seed),
            Design::Sessions(small.clone()),
        );
        let mut paired = Campaign::new(Scenario::small(seed));
        paired.push("zz/sibling", cdnsim::ServiceConfig::bing_like(seed), sibling());
        paired.push(
            "sessions/reorder",
            cdnsim::ServiceConfig::google_like(seed),
            Design::Sessions(small),
        );

        let rows = |c: &Campaign| -> String {
            let report = c.execute_with_threads(2);
            let run = report.get("sessions/reorder").unwrap();
            run.queries
                .iter()
                .map(|q| emulator::TsvRows::format_row("sessions/reorder", q))
                .collect()
        };
        prop_assert_eq!(rows(&alone), rows(&paired));
    }

    /// Shot-noise redraws are a pure function of (seed, name): two
    /// processes built from the same named streams agree at every
    /// sampled instant, regardless of how their advances interleave.
    #[test]
    fn shot_noise_redraws_are_stream_stable(
        seed in 0u64..10_000,
        churn in 1.0f64..200.0,
        steps in 10usize..60,
    ) {
        let model = PopularityModel::static_zipf(0.8).with_churn(churn);
        let mut a = PopularityProcess::new(200, model.clone(), Rng::from_seed_and_name(seed, "wl/churn"));
        let mut b = PopularityProcess::new(200, model, Rng::from_seed_and_name(seed, "wl/churn"));
        // a advances in small steps, b jumps straight to each sample
        // instant; draws must agree anyway.
        let mut da = Rng::from_seed_and_name(seed, "wl/draw");
        let mut db = Rng::from_seed_and_name(seed, "wl/draw");
        for i in 0..steps {
            let t = SimTime::from_millis((i as u64 + 1) * 97);
            a.advance(SimTime::from_millis(i as u64 * 97 + 48));
            prop_assert_eq!(a.sample(t, &mut da), b.sample(t, &mut db));
        }
    }
}
