//! Integration: the marker-blind inference pipeline end to end — the
//! way the paper actually had to work: no ground-truth labels, only
//! payload recurrence across sessions.

use capture::{find_static_content_ids, Classifier, Timeline};
use cdnsim::ServiceWorld;
use fecdn::prelude::*;
use inference::{RttSample, Vivaldi};

/// Runs a mixed Dataset-A-style campaign keeping raw traces, returning
/// (completions, per-session client nodes).
fn campaign(seed: u64, distinct_keywords: bool) -> Vec<CompletedQuery> {
    let scenario = Scenario::with_size(seed, 20, 400);
    let cfg = ServiceConfig::bing_like(seed);
    let mut sim = scenario.build_sim(cfg);
    sim.with(|w, net| {
        for c in 0..w.clients().len() {
            for r in 0..3u64 {
                let keyword = if distinct_keywords {
                    (c as u64 * 3 + r + 1) % 400
                } else {
                    0
                };
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1 + r * 8_000 + c as u64 * 97),
                    QuerySpec {
                        client: c,
                        keyword,
                        fixed_fe: None,
                        instant_followup: false,
                    },
                );
            }
        }
    });
    let mut raw = Vec::new();
    let _ = run_collect_with(&mut sim, &Classifier::ByMarker, |cq| raw.push(cq.clone()));
    raw
}

#[test]
fn blind_pipeline_reproduces_ground_truth_parameters() {
    let raw = campaign(31, true);
    assert!(raw.len() >= 50);
    // Step 1: learn the static content ids from cross-session recurrence
    // (no markers involved).
    let sessions: Vec<Vec<tcpsim::PktEvent>> = raw.iter().map(|cq| cq.trace.clone()).collect();
    let clients: Vec<tcpsim::NodeId> = raw
        .iter()
        .map(|cq| ServiceWorld::client_node(cq.client))
        .collect();
    let static_ids = find_static_content_ids(&sessions, |i| clients[i], 3);
    assert_eq!(static_ids.len(), 1, "one service → one static head");
    let blind = Classifier::ByContent(static_ids);
    // Step 2: every session's blind parameters equal the oracle's.
    let mut checked = 0;
    for (i, cq) in raw.iter().enumerate() {
        let oracle = Timeline::extract(&cq.trace, clients[i], &Classifier::ByMarker).unwrap();
        let inferred = Timeline::extract(&cq.trace, clients[i], &blind).unwrap();
        assert_eq!(oracle.t4, inferred.t4);
        assert_eq!(oracle.t5, inferred.t5);
        assert_eq!(oracle.static_bytes, inferred.static_bytes);
        // Step 3: the fetch bracket from blind parameters still contains
        // the simulator truth.
        let p = QueryParams::from_timeline(&inferred);
        if let Some(truth) = cq.true_fetch_ms() {
            assert!(FetchBounds::from_params(&p).contains(truth, 15.0));
            checked += 1;
        }
    }
    assert!(checked >= 40);
}

#[test]
fn repeated_single_keyword_defeats_content_analysis() {
    // A methodological caveat the paper's design implies: with only ONE
    // keyword in the probe set, the dynamic portion also recurs across
    // sessions... except personalisation gives every response fresh
    // bytes, which is exactly what rescues the method. Verify: even with
    // a single repeated keyword, dynamic content does NOT recur (fresh
    // content identity per response), so classification stays correct.
    let raw = campaign(32, false);
    let sessions: Vec<Vec<tcpsim::PktEvent>> = raw.iter().map(|cq| cq.trace.clone()).collect();
    let clients: Vec<tcpsim::NodeId> = raw
        .iter()
        .map(|cq| ServiceWorld::client_node(cq.client))
        .collect();
    let static_ids = find_static_content_ids(&sessions, |i| clients[i], 3);
    assert_eq!(
        static_ids.len(),
        1,
        "personalised responses keep dynamic bytes unique: {static_ids:?}"
    );
}

#[test]
fn coordinates_pipeline_estimates_febe_rtt_from_client_measurements() {
    let scenario = Scenario::with_size(33, 30, 200);
    let cfg = ServiceConfig::google_like(33);
    let mut sim = scenario.build_sim(cfg.clone());
    let (n_clients, n_fes) = sim.with(|w, _| (w.clients().len(), w.fe_count()));
    // Ground-truth RTT matrix via the world's path models (standing in
    // for handshake measurements, which the exp_coords harness uses).
    let mut samples = Vec::new();
    sim.with(|w, _| {
        for c in 0..n_clients {
            for fe in 0..n_fes {
                samples.push(RttSample {
                    a: c,
                    b: n_clients + fe,
                    rtt_ms: w.client_fe_rtt_ms(c, fe).max(0.1),
                });
            }
        }
    });
    let mut viv = Vivaldi::new(n_clients + n_fes, 33);
    viv.train(&samples, 40, 33);
    assert!(viv.median_rel_error(&samples) < 0.2);
    // FE↔FE predictions (never measured) correlate with geography.
    let mut est = Vec::new();
    let mut truth = Vec::new();
    sim.with(|w, _| {
        for a in 0..n_fes {
            for b in (a + 1)..n_fes {
                est.push(viv.predict(n_clients + a, n_clients + b));
                truth.push(
                    nettopo::path::PathModel::between(
                        &w.cfg.fe_fleet[a].pt,
                        &w.cfg.fe_fleet[b].pt,
                        &nettopo::path::PathProfile::campus_access(),
                    )
                    .nominal_rtt_ms(),
                );
            }
        }
    });
    let r = stats::pearson(&est, &truth).unwrap();
    assert!(r > 0.8, "FE↔FE prediction correlation {r}");
}
