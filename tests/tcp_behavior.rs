//! Integration: TCP mechanics the paper's model leans on, observed
//! through packet traces rather than internal state.

use simcore::dist::Dist;
use simcore::time::{SimDuration, SimTime};
use tcpsim::{
    App, CongAlgo, ConnId, DeliveredSpan, End, Marker, Net, NodeId, PathParams, PktDir, PktKind,
    Sim, TcpOptions,
};

/// Server sends `response` bytes on connect; the client app records
/// nothing — traces carry the evidence.
struct OneShot {
    response: u64,
    request: u64,
    got: u64,
}
impl App for OneShot {
    fn on_established(&mut self, net: &mut Net, conn: ConnId, end: End) {
        if end == End::A {
            net.send(conn, End::A, self.request, Marker::Request, 1);
        }
    }
    fn on_data(&mut self, net: &mut Net, conn: ConnId, end: End, spans: &[DeliveredSpan]) {
        let bytes: u64 = spans.iter().map(|s| s.len as u64).sum();
        match end {
            End::B => {
                if net.delivered_bytes(conn, End::B) >= self.request {
                    net.send(conn, End::B, self.response, Marker::Static, 2);
                }
            }
            End::A => self.got += bytes,
        }
    }
}

fn trace_run(
    rtt_ms: f64,
    request: u64,
    response: u64,
    opts_b: TcpOptions,
) -> (Vec<tcpsim::PktEvent>, u64) {
    let mut sim = Sim::new(
        3,
        OneShot {
            response,
            request,
            got: 0,
        },
    );
    sim.net().trace_mut().set_enabled(true);
    sim.net().open(
        NodeId(1),
        NodeId(2),
        PathParams::ideal(rtt_ms),
        TcpOptions::default(),
        opts_b,
        9,
    );
    sim.run();
    let got = sim.app().got;
    let trace = sim.net().trace_mut().take_session(9);
    (trace, got)
}

#[test]
fn initial_burst_is_exactly_the_initial_window() {
    // 100 KB response at IW4: the first flight from the server must be
    // exactly 4 MSS segments, then a one-RTT pause for ACKs.
    let (trace, got) = trace_run(100.0, 400, 100_000, TcpOptions::default());
    assert_eq!(got, 100_000);
    let data_rx: Vec<&tcpsim::PktEvent> = trace
        .iter()
        .filter(|e| e.node == NodeId(1) && e.dir == PktDir::Rx && e.kind == PktKind::Data)
        .collect();
    // First burst: packets within a few ms of the first data arrival.
    let t0 = data_rx[0].t;
    let first_burst = data_rx
        .iter()
        .filter(|e| e.t.saturating_since(t0) < SimDuration::from_millis(20))
        .count();
    assert_eq!(first_burst, 4, "IW=4 must bound the first flight");
    // The next packet arrives ≈ one RTT later (ACK-clocked).
    let gap = data_rx[4].t.saturating_since(data_rx[3].t).as_millis_f64();
    assert!((gap - 100.0).abs() < 15.0, "round gap {gap}ms");
}

#[test]
fn slow_start_doubles_flight_sizes_per_round() {
    let (trace, _) = trace_run(120.0, 400, 200_000, TcpOptions::default());
    let data_rx: Vec<SimTime> = trace
        .iter()
        .filter(|e| e.node == NodeId(1) && e.dir == PktDir::Rx && e.kind == PktKind::Data)
        .map(|e| e.t)
        .collect();
    // Cluster arrivals into RTT rounds (gap > 40ms starts a new round).
    let mut rounds: Vec<usize> = vec![0];
    for w in data_rx.windows(2) {
        if w[1].saturating_since(w[0]) > SimDuration::from_millis(40) {
            rounds.push(0);
        }
        *rounds.last_mut().unwrap() += 1;
    }
    *rounds.first_mut().unwrap() += 1; // count the first packet
    assert!(rounds.len() >= 4, "rounds {rounds:?}");
    // Geometric-ish growth with delayed ACKs (×1.5 per round at least).
    for w in rounds.windows(2).take(3) {
        assert!(
            w[1] as f64 >= w[0] as f64 * 1.4,
            "slow start should grow flights: {rounds:?}"
        );
    }
}

#[test]
fn receive_window_caps_the_flight() {
    // An 8 KB receive window bounds the in-flight data no matter how
    // large cwnd grows — the paper's "C depends on the TCP window size"
    // knob.
    let opts_b = TcpOptions::default();
    let opts_a = TcpOptions {
        rwnd: 8 * 1024,
        ..TcpOptions::default()
    };
    let mut sim = Sim::new(
        4,
        OneShot {
            response: 150_000,
            request: 400,
            got: 0,
        },
    );
    sim.net().trace_mut().set_enabled(true);
    sim.net().open(
        NodeId(1),
        NodeId(2),
        PathParams::ideal(60.0),
        opts_a,
        opts_b,
        9,
    );
    sim.run();
    assert_eq!(sim.app().got, 150_000);
    let trace = sim.net().trace_mut().take_session(9);
    // Max outstanding bytes observed at the client: max seq_end received
    // minus max ack the client had sent before that arrival never
    // exceeds rwnd. Simpler proxy: count packets per RTT round ≤ 6
    // (8 KB / 1460 ≈ 5.6).
    let data_rx: Vec<SimTime> = trace
        .iter()
        .filter(|e| e.node == NodeId(1) && e.dir == PktDir::Rx && e.kind == PktKind::Data)
        .map(|e| e.t)
        .collect();
    let mut round = 0usize;
    let mut max_round = 0usize;
    for w in data_rx.windows(2) {
        if w[1].saturating_since(w[0]) > SimDuration::from_millis(25) {
            max_round = max_round.max(round + 1);
            round = 0;
        } else {
            round += 1;
        }
    }
    assert!(max_round <= 6, "flight of {max_round} exceeds the 8KB rwnd");
}

#[test]
fn rto_backoff_doubles_under_blackout_and_recovers() {
    // 60% loss: many RTOs. The SYN retransmission intervals must grow
    // (exponential backoff) — read them from the trace.
    let mut sim = Sim::new(
        11,
        OneShot {
            response: 5_000,
            request: 400,
            got: 0,
        },
    );
    sim.net().trace_mut().set_enabled(true);
    sim.net().open(
        NodeId(1),
        NodeId(2),
        PathParams {
            base_owd_ms: 20.0,
            jitter_ms: Dist::Constant(0.0),
            loss: 0.6,
            bw_mbps: 1000.0,
        },
        TcpOptions::default(),
        TcpOptions::default(),
        9,
    );
    sim.run_until(SimTime::from_secs(300));
    let trace = sim.net().trace_mut().take_session(9);
    let syn_tx: Vec<SimTime> = trace
        .iter()
        .filter(|e| e.node == NodeId(1) && e.kind == PktKind::Syn && e.dir == PktDir::Tx)
        .map(|e| e.t)
        .collect();
    if syn_tx.len() >= 3 {
        let g1 = syn_tx[1].saturating_since(syn_tx[0]).as_millis_f64();
        let g2 = syn_tx[2].saturating_since(syn_tx[1]).as_millis_f64();
        assert!(
            (g1 - 1000.0).abs() < 50.0,
            "first retry after initial RTO, got {g1}"
        );
        assert!(
            (g2 - 2.0 * g1).abs() < 100.0,
            "backoff should double: {g1} → {g2}"
        );
    }
}

#[test]
fn idle_reset_restarts_slow_start_on_stale_connections() {
    // Two bursts 30 s apart on one connection. With idle_reset the
    // second burst's first flight is IW-sized again; without, it rides
    // the grown window.
    struct TwoBursts {
        second_sent: bool,
    }
    impl App for TwoBursts {
        fn on_established(&mut self, net: &mut Net, conn: ConnId, end: End) {
            if end == End::B {
                net.send(conn, End::B, 120_000, Marker::Static, 1);
                net.set_timer(SimDuration::from_secs(30), conn.0 as u64);
            }
        }
        fn on_data(&mut self, _: &mut Net, _: ConnId, _: End, _: &[DeliveredSpan]) {}
        fn on_timer(&mut self, net: &mut Net, token: u64) {
            if !self.second_sent {
                self.second_sent = true;
                net.send(ConnId(token as u32), End::B, 120_000, Marker::Dynamic, 2);
            }
        }
    }
    let first_flight_of_second_burst = |idle_reset: bool| -> usize {
        let opts_b = if idle_reset {
            TcpOptions::default().with_idle_reset()
        } else {
            TcpOptions::default()
        };
        let mut sim = Sim::new(13, TwoBursts { second_sent: false });
        sim.net().trace_mut().set_enabled(true);
        sim.net().open(
            NodeId(1),
            NodeId(2),
            PathParams::ideal(80.0),
            TcpOptions::default(),
            opts_b,
            9,
        );
        sim.run();
        let trace = sim.net().trace_mut().take_session(9);
        let second: Vec<SimTime> = trace
            .iter()
            .filter(|e| {
                e.node == NodeId(1)
                    && e.dir == PktDir::Rx
                    && e.kind == PktKind::Data
                    && e.meta.iter().any(|m| m.marker == Marker::Dynamic)
            })
            .map(|e| e.t)
            .collect();
        let t0 = second[0];
        second
            .iter()
            .filter(|t| t.saturating_since(t0) < SimDuration::from_millis(30))
            .count()
    };
    let with_reset = first_flight_of_second_burst(true);
    let without = first_flight_of_second_burst(false);
    assert_eq!(with_reset, 4, "idle reset returns to IW");
    assert!(
        without >= 10,
        "warm window should carry a big burst, got {without}"
    );
}

#[test]
fn cubic_and_reno_identical_during_slow_start() {
    // Search responses live in slow start: the two algorithms must
    // produce byte-identical traces on a clean path.
    let run = |cong: CongAlgo| {
        let (trace, _) = trace_run(90.0, 400, 40_000, TcpOptions::default().with_cong(cong));
        trace
            .iter()
            .filter(|e| e.node == NodeId(1) && e.dir == PktDir::Rx)
            .map(|e| (e.t, e.seq, e.len))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(CongAlgo::Reno), run(CongAlgo::Cubic));
}
