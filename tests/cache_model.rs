//! Cache-model conformance: eviction order per policy, TTL boundary
//! semantics, capacity accounting, degenerate edges, and the accounting
//! invariants under arbitrary op interleavings.
//!
//! The armed-but-inert half lives here too: a campaign with the cache
//! model *installed* on every run — unbounded static cache, a
//! provisioned-but-disabled result cache — must reproduce the committed
//! pre-cache-model golden byte for byte at any `FECDN_THREADS`.

mod common;

use cdnsim::{Cache, CacheConfig, CachePolicy, ObjectCache, ServiceConfig};
use common::representative_campaign;
use emulator::dataset_a::{DatasetA, KeywordPolicy};
use emulator::dataset_b::DatasetB;
use emulator::{Campaign, Design, Scenario};
use proptest::prelude::*;
use simcore::time::{SimDuration, SimTime};

fn at(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

#[test]
fn lru_evicts_strictly_in_recency_order() {
    // Entries 1..=4 at 10 B each under a 40 B cap; touch 1 and 3, then
    // insert three more. Evictions must follow recency: 2, 4, 1.
    let mut c: ObjectCache<&str> = ObjectCache::new(CacheConfig::lru(40));
    for k in 1..=4 {
        c.insert(k, "v", 10, at(k));
    }
    assert!(c.get(1, at(10)).is_some());
    assert!(c.get(3, at(11)).is_some());
    c.insert(5, "v", 10, at(20));
    assert!(!c.contains(2, at(20)), "2 was the coldest");
    c.insert(6, "v", 10, at(21));
    assert!(!c.contains(4, at(21)), "then 4");
    c.insert(7, "v", 10, at(22));
    assert!(!c.contains(1, at(22)), "then 1, despite its touch");
    for k in [3, 5, 6, 7] {
        assert!(c.contains(k, at(23)), "{k} should have survived");
    }
    assert_eq!(c.stats().evictions, 3);
}

#[test]
fn lfu_prefers_frequency_and_breaks_ties_by_recency() {
    let mut c: ObjectCache<&str> = ObjectCache::new(CacheConfig::lfu(30));
    c.insert(1, "v", 10, at(0));
    c.insert(2, "v", 10, at(1));
    c.insert(3, "v", 10, at(2));
    // 1 is hot (3 hits), 2 lukewarm (1 hit), 3 cold (0 hits).
    for t in 3..6 {
        c.get(1, at(t));
    }
    c.get(2, at(6));
    c.insert(4, "v", 10, at(7));
    assert!(!c.contains(3, at(7)), "cold entry evicts first under LFU");
    c.insert(5, "v", 10, at(8));
    // 2 (freq 2) loses to 4 and 5 (freq 1)? No: lower freq evicts
    // first, and 4 is older than 5 at equal frequency.
    assert!(!c.contains(4, at(8)), "freq tie broken by insertion order");
    assert!(c.contains(1, at(9)) && c.contains(2, at(9)));
}

#[test]
fn ttl_expires_exactly_at_the_boundary_instant() {
    let ttl = SimDuration::from_secs(10);
    let mut c: ObjectCache<&str> = ObjectCache::new(CacheConfig::ttl(ttl, 1_000));
    c.insert(1, "v", 10, at(1_000));
    let last_valid = at(1_000) + SimDuration::from_nanos(10 * 1_000_000_000 - 1);
    assert!(
        c.get(1, last_valid).is_some(),
        "one tick before the boundary"
    );
    // `now >= inserted_at + ttl` is a miss plus an expiration — the
    // boundary instant itself is already stale.
    assert!(c.get(1, at(11_000)).is_none(), "boundary instant is a miss");
    let s = c.stats();
    assert_eq!((s.hits, s.misses, s.expirations), (1, 1, 1));
    assert_eq!(c.bytes_resident(), 0);
}

#[test]
fn byte_capacity_and_entry_count_bind_independently() {
    // Entry cap binds first: 100 B budget but only 2 slots.
    let mut c: ObjectCache<&str> = ObjectCache::new(CacheConfig::lru(100).with_max_entries(2));
    c.insert(1, "v", 10, at(0));
    c.insert(2, "v", 10, at(1));
    c.insert(3, "v", 10, at(2));
    assert_eq!((c.len(), c.bytes_resident()), (2, 20));
    assert_eq!(c.stats().evictions, 1);

    // Byte cap binds first: 3 slots but a 25 B budget.
    let mut c: ObjectCache<&str> = ObjectCache::new(CacheConfig::lru(25).with_max_entries(3));
    c.insert(1, "v", 10, at(0));
    c.insert(2, "v", 10, at(1));
    c.insert(3, "v", 10, at(2));
    assert_eq!((c.len(), c.bytes_resident()), (2, 20));
    assert!(c.bytes_resident() <= 25);
}

#[test]
fn zero_capacity_and_oversized_objects_are_rejected_not_thrashed() {
    let mut zero: ObjectCache<&str> = ObjectCache::new(CacheConfig::lru(0));
    let out = zero.insert(1, "v", 1, at(0));
    assert!(!out.inserted);
    assert_eq!(zero.stats().rejections, 1);
    assert!(zero.is_empty());

    let mut small: ObjectCache<&str> = ObjectCache::new(CacheConfig::lfu(100));
    small.insert(1, "v", 60, at(0));
    let out = small.insert(2, "v", 101, at(1));
    assert!(!out.inserted, "oversized object can never fit");
    assert_eq!(out.evicted, 0, "rejection must not evict residents");
    assert!(small.contains(1, at(2)));
}

#[test]
fn refresh_is_not_an_eviction() {
    let mut c: ObjectCache<u32> = ObjectCache::new(CacheConfig::lru(30));
    c.insert(1, 10, 10, at(0));
    c.insert(2, 20, 10, at(1));
    let out = c.insert(1, 11, 20, at(2));
    assert!(out.inserted);
    assert_eq!(out.evicted, 0, "replacing key 1 reuses its own bytes");
    assert_eq!(c.get(1, at(3)), Some(&11));
    assert_eq!(c.bytes_resident(), 30);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under any interleaving of inserts and gets, against any policy
    /// and capacity: `hits + misses == lookups`, resident bytes never
    /// exceed the byte cap, entry count never exceeds the entry cap,
    /// and the running byte counter matches a from-scratch recount.
    #[test]
    fn accounting_invariants_hold_under_arbitrary_interleavings(
        policy in 0u8..3,
        cap in 0u64..400,
        raw_max in 0usize..13,
        ops in prop::collection::vec((0u8..2, 0u64..24, 1u64..80, 0u64..5_000), 1..120),
    ) {
        // raw_max == 0 encodes "no entry cap" (the shim has no Option
        // strategy); cap == 0 is the degenerate zero-byte cache.
        let max_entries = (raw_max > 0).then_some(raw_max);
        let mut cfg = match policy {
            0 => CacheConfig::lru(cap),
            1 => CacheConfig::lfu(cap),
            _ => CacheConfig::ttl(SimDuration::from_millis(800), cap),
        };
        if let Some(n) = max_entries {
            cfg = cfg.with_max_entries(n);
        }
        let mut c: ObjectCache<u64> = ObjectCache::new(cfg);
        let mut now = SimTime::ZERO;
        for (op, key, size, dt) in ops {
            now += SimDuration::from_millis(dt);
            match op {
                0 => { c.insert(key, key, size, now); }
                _ => { c.get(key, now); }
            }
            let s = c.stats();
            prop_assert_eq!(s.hits + s.misses, s.lookups);
            prop_assert!(c.bytes_resident() <= cap);
            if let Some(n) = max_entries {
                prop_assert!(c.len() <= n);
            }
        }
        // The eviction index and the map must agree at quiescence: a
        // full key sweep via get() flushes lazily-expired entries, after
        // which the hit count and the resident count must coincide.
        let mut live = 0usize;
        for k in 0u64..24 {
            if c.get(k, now).is_some() {
                live += 1;
            }
        }
        prop_assert_eq!(live, c.len());
    }

    /// TTL caches drain completely once the clock passes every expiry,
    /// and expired entries never count as hits.
    #[test]
    fn ttl_cache_drains_after_the_horizon(
        keys in prop::collection::vec(0u64..16, 1..40),
    ) {
        let ttl = SimDuration::from_millis(500);
        let mut c: ObjectCache<u64> = ObjectCache::new(CacheConfig::ttl(ttl, 10_000));
        let mut now = SimTime::ZERO;
        for &k in &keys {
            now += SimDuration::from_millis(7);
            c.insert(k, k, 8, now);
        }
        let horizon = now + SimDuration::from_millis(500);
        for k in 0u64..16 {
            prop_assert!(c.get(k, horizon).is_none());
        }
        prop_assert!(c.is_empty());
        prop_assert_eq!(c.bytes_resident(), 0);
    }
}

/// The representative campaign with the cache model installed on every
/// run, tuned to be inert: the static cache is explicitly unbounded
/// (exactly what the default config provisions) and a result-cache
/// config is provisioned without enabling result caching.
fn installed_but_inert(cfg: ServiceConfig) -> ServiceConfig {
    let mut cfg = cfg.with_static_cache(CacheConfig::unbounded());
    cfg.fe_result_cache = CacheConfig {
        policy: CachePolicy::Lfu,
        capacity_bytes: None,
        max_entries: None,
    };
    assert!(!cfg.fe_caches_results, "provisioning must not enable");
    cfg
}

fn inert_cache_campaign(seed: u64) -> Campaign {
    let mut c = Campaign::new(Scenario::small(seed));
    c.push(
        "a/bing",
        installed_but_inert(ServiceConfig::bing_like(seed)),
        Design::DatasetA(DatasetA {
            repeats: 2,
            spacing: SimDuration::from_secs(8),
            keywords: KeywordPolicy::Fixed(0),
        }),
    );
    c.push(
        "a/google",
        installed_but_inert(ServiceConfig::google_like(seed)),
        Design::DatasetA(DatasetA {
            repeats: 2,
            spacing: SimDuration::from_secs(8),
            keywords: KeywordPolicy::RoundRobin(5),
        }),
    );
    c.push(
        "b/fixed-fe",
        installed_but_inert(ServiceConfig::google_like(seed)),
        Design::DatasetB(DatasetB::against(0).with_repeats(3)),
    );
    c.push(
        "custom/close-pair",
        installed_but_inert(ServiceConfig::bing_like(seed)),
        Design::custom(|sim| {
            sim.with(|w, net| {
                let fe = w.default_fe(0);
                let be = w.be_of_fe(fe);
                w.prewarm(net, fe, be, 2);
                for r in 0..4u64 {
                    w.schedule_query(
                        net,
                        SimDuration::from_millis(1_000 + r * 7_000),
                        cdnsim::QuerySpec {
                            client: 0,
                            keyword: r,
                            fixed_fe: Some(fe),
                            instant_followup: false,
                        },
                    );
                }
            });
        }),
    )
    .keep_raw = true;
    c
}

#[test]
fn installed_but_inert_cache_model_reproduces_committed_golden() {
    let plain = representative_campaign(42).execute_with_threads(2).to_tsv();
    let installed = inert_cache_campaign(42).execute_with_threads(2).to_tsv();
    assert_eq!(plain, installed, "provisioning a cache changed behavior");
    common::compare_golden(
        &installed,
        "campaign_seed42.tsv",
        "cache model installed but inert",
    );
    // Thread invariance on the installed side.
    let serial = inert_cache_campaign(42).execute_with_threads(1).to_tsv();
    let parallel = inert_cache_campaign(42).execute_with_threads(4).to_tsv();
    assert_eq!(serial, parallel);
    assert_eq!(serial, installed);
}
