//! Campaign determinism: the sharded runner must be a pure
//! reordering of the serial runner.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Thread invariance** — a campaign's merged output is
//!    byte-identical whether it runs on one worker or many. Each run
//!    descriptor owns a whole simulated world and a seed derived only
//!    from `(campaign seed, label)`, so scheduling order can never leak
//!    into results.
//! 2. **Golden traces** — the exact TSV of a small representative
//!    campaign is committed under `tests/golden/`. Any change to the
//!    simulator core, the world construction, the seed derivation or
//!    the TSV formatting shows up as a diff here, reviewable in the PR
//!    that caused it. Refresh intentionally with
//!    `scripts/update_golden.sh`.

mod common;

use common::{compare_golden, representative_campaign};
use emulator::{FoldSink, ProcessedQuery, RunDescriptor, TsvRows};
use emulator::{StreamReport, TSV_HEADER};
use stats::{QuantileAcc, Welford};

#[test]
fn campaign_output_is_thread_invariant() {
    let c = representative_campaign(42);
    let serial = c.execute_with_threads(1);
    let sharded = c.execute_with_threads(4);
    assert_eq!(serial.threads, 1);
    assert_eq!(sharded.threads, 4.min(c.len()).max(1));
    assert_eq!(
        serial.to_tsv(),
        sharded.to_tsv(),
        "merged TSV must be byte-identical at 1 and 4 workers"
    );
    // Raw captures merge identically too (same traces, same order).
    let a = &serial.get("custom/close-pair").unwrap().raw;
    let b = &sharded.get("custom/close-pair").unwrap().raw;
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.trace.len(), y.trace.len());
        assert_eq!(x.client, y.client);
    }
}

/// Reassembles the legacy `CampaignReport::to_tsv` document from a
/// streaming execution's per-run row strings.
fn stream_tsv(report: &StreamReport<String>) -> String {
    let mut out = String::from(TSV_HEADER);
    for r in &report.runs {
        let t = &r.tally;
        // Mirrors `CampaignReport::to_tsv`: `shed` only when non-zero.
        let shed = if t.shed > 0 {
            format!(" shed={}", t.shed)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "# run={} ok={} degraded={} retried={} timed_out={}{} skipped={}\n",
            r.label, t.ok, t.degraded, t.retried, t.timed_out, shed, t.skipped
        ));
        out.push_str(&r.output);
    }
    out
}

#[test]
fn streaming_sink_is_thread_invariant_and_matches_collect_path() {
    let c = representative_campaign(42);
    let rows = |d: &RunDescriptor| TsvRows::new(&d.label);
    let stream1 = c.execute_stream_with_threads(&rows, 1);
    let stream4 = c.execute_stream_with_threads(&rows, 4);

    // The streamed TSV is byte-identical at any worker count AND to the
    // collect-then-format legacy path (which the golden traces pin).
    let legacy = c.execute_with_threads(4).to_tsv();
    assert_eq!(
        stream_tsv(&stream1),
        legacy,
        "streamed TSV at 1 worker must match the legacy collect path"
    );
    assert_eq!(
        stream_tsv(&stream4),
        legacy,
        "streamed TSV at 4 workers must match the legacy collect path"
    );

    // Reducer state is bit-identical across thread counts too: each run
    // folds single-threaded in its own shard, so online accumulators
    // see the same values in the same order regardless of scheduling.
    let reducers = |_: &RunDescriptor| {
        FoldSink::new(
            (Welford::new(), QuantileAcc::exact()),
            |s: &mut (Welford, QuantileAcc), q: &ProcessedQuery| {
                s.0.push(q.params.overall_ms);
                s.1.push(q.params.overall_ms);
            },
        )
    };
    let r1 = c.execute_stream_with_threads(&reducers, 1);
    let r4 = c.execute_stream_with_threads(&reducers, 4);
    assert_eq!(r1.runs.len(), r4.runs.len());
    for (a, b) in r1.runs.iter().zip(r4.runs.iter()) {
        assert_eq!(a.label, b.label, "merge must preserve descriptor order");
        let ((wa, qa), (wb, qb)) = (&a.output, &b.output);
        assert_eq!(wa.count(), wb.count());
        assert_eq!(
            wa.mean().map(f64::to_bits),
            wb.mean().map(f64::to_bits),
            "run {}: Welford mean must be bit-identical",
            a.label
        );
        assert_eq!(
            wa.variance().map(f64::to_bits),
            wb.variance().map(f64::to_bits),
            "run {}: Welford variance must be bit-identical",
            a.label
        );
        let (va, vb) = (qa.values().unwrap(), qb.values().unwrap());
        assert_eq!(va.len(), vb.len());
        assert!(
            va.iter()
                .zip(vb.iter())
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "run {}: exact quantile sample must be bit-identical",
            a.label
        );
    }
}

#[test]
fn campaign_output_is_oversubscription_invariant() {
    // More workers than runs: excess threads must be clamped away, not
    // spin on an empty queue or change the merge.
    let c = representative_campaign(7);
    assert_eq!(
        c.execute_with_threads(2).to_tsv(),
        c.execute_with_threads(64).to_tsv()
    );
}

fn check_golden(seed: u64, name: &str) {
    let got = representative_campaign(seed)
        .execute_with_threads(4)
        .to_tsv();
    compare_golden(&got, name, "telemetry default");
}

#[test]
fn golden_trace_seed42_matches() {
    check_golden(42, "campaign_seed42.tsv");
}

#[test]
fn golden_trace_seed7_matches() {
    check_golden(7, "campaign_seed7.tsv");
}
