//! Campaign determinism: the sharded runner must be a pure
//! reordering of the serial runner.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Thread invariance** — a campaign's merged output is
//!    byte-identical whether it runs on one worker or many. Each run
//!    descriptor owns a whole simulated world and a seed derived only
//!    from `(campaign seed, label)`, so scheduling order can never leak
//!    into results.
//! 2. **Golden traces** — the exact TSV of a small representative
//!    campaign is committed under `tests/golden/`. Any change to the
//!    simulator core, the world construction, the seed derivation or
//!    the TSV formatting shows up as a diff here, reviewable in the PR
//!    that caused it. Refresh intentionally with
//!    `scripts/update_golden.sh`.

use cdnsim::ServiceConfig;
use emulator::dataset_a::{DatasetA, KeywordPolicy};
use emulator::dataset_b::DatasetB;
use emulator::{Campaign, Design, FoldSink, ProcessedQuery, RunDescriptor, Scenario, TsvRows};
use emulator::{StreamReport, TSV_HEADER};
use simcore::time::SimDuration;
use stats::{QuantileAcc, Welford};
use std::path::PathBuf;

/// A small campaign touching every design family: both stock dataset
/// designs, both service archetypes, a custom closure design, and one
/// run with raw-capture enabled.
fn representative_campaign(seed: u64) -> Campaign {
    let mut c = Campaign::new(Scenario::small(seed));
    c.push(
        "a/bing",
        ServiceConfig::bing_like(seed),
        Design::DatasetA(DatasetA {
            repeats: 2,
            spacing: SimDuration::from_secs(8),
            keywords: KeywordPolicy::Fixed(0),
        }),
    );
    c.push(
        "a/google",
        ServiceConfig::google_like(seed),
        Design::DatasetA(DatasetA {
            repeats: 2,
            spacing: SimDuration::from_secs(8),
            keywords: KeywordPolicy::RoundRobin(5),
        }),
    );
    c.push(
        "b/fixed-fe",
        ServiceConfig::google_like(seed),
        Design::DatasetB(DatasetB::against(0).with_repeats(3)),
    );
    let run = c.push(
        "custom/close-pair",
        ServiceConfig::bing_like(seed),
        Design::custom(|sim| {
            sim.with(|w, net| {
                let fe = w.default_fe(0);
                let be = w.be_of_fe(fe);
                w.prewarm(net, fe, be, 2);
                for r in 0..4u64 {
                    w.schedule_query(
                        net,
                        SimDuration::from_millis(1_000 + r * 7_000),
                        cdnsim::QuerySpec {
                            client: 0,
                            keyword: r,
                            fixed_fe: Some(fe),
                            instant_followup: false,
                        },
                    );
                }
            });
        }),
    );
    run.keep_raw = true;
    c
}

#[test]
fn campaign_output_is_thread_invariant() {
    let c = representative_campaign(42);
    let serial = c.execute_with_threads(1);
    let sharded = c.execute_with_threads(4);
    assert_eq!(serial.threads, 1);
    assert_eq!(sharded.threads, 4.min(c.len()).max(1));
    assert_eq!(
        serial.to_tsv(),
        sharded.to_tsv(),
        "merged TSV must be byte-identical at 1 and 4 workers"
    );
    // Raw captures merge identically too (same traces, same order).
    let a = &serial.get("custom/close-pair").unwrap().raw;
    let b = &sharded.get("custom/close-pair").unwrap().raw;
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.trace.len(), y.trace.len());
        assert_eq!(x.client, y.client);
    }
}

/// Reassembles the legacy `CampaignReport::to_tsv` document from a
/// streaming execution's per-run row strings.
fn stream_tsv(report: &StreamReport<String>) -> String {
    let mut out = String::from(TSV_HEADER);
    for r in &report.runs {
        let t = &r.tally;
        out.push_str(&format!(
            "# run={} ok={} degraded={} retried={} timed_out={} skipped={}\n",
            r.label, t.ok, t.degraded, t.retried, t.timed_out, t.skipped
        ));
        out.push_str(&r.output);
    }
    out
}

#[test]
fn streaming_sink_is_thread_invariant_and_matches_collect_path() {
    let c = representative_campaign(42);
    let rows = |d: &RunDescriptor| TsvRows::new(&d.label);
    let stream1 = c.execute_stream_with_threads(&rows, 1);
    let stream4 = c.execute_stream_with_threads(&rows, 4);

    // The streamed TSV is byte-identical at any worker count AND to the
    // collect-then-format legacy path (which the golden traces pin).
    let legacy = c.execute_with_threads(4).to_tsv();
    assert_eq!(
        stream_tsv(&stream1),
        legacy,
        "streamed TSV at 1 worker must match the legacy collect path"
    );
    assert_eq!(
        stream_tsv(&stream4),
        legacy,
        "streamed TSV at 4 workers must match the legacy collect path"
    );

    // Reducer state is bit-identical across thread counts too: each run
    // folds single-threaded in its own shard, so online accumulators
    // see the same values in the same order regardless of scheduling.
    let reducers = |_: &RunDescriptor| {
        FoldSink::new(
            (Welford::new(), QuantileAcc::exact()),
            |s: &mut (Welford, QuantileAcc), q: &ProcessedQuery| {
                s.0.push(q.params.overall_ms);
                s.1.push(q.params.overall_ms);
            },
        )
    };
    let r1 = c.execute_stream_with_threads(&reducers, 1);
    let r4 = c.execute_stream_with_threads(&reducers, 4);
    assert_eq!(r1.runs.len(), r4.runs.len());
    for (a, b) in r1.runs.iter().zip(r4.runs.iter()) {
        assert_eq!(a.label, b.label, "merge must preserve descriptor order");
        let ((wa, qa), (wb, qb)) = (&a.output, &b.output);
        assert_eq!(wa.count(), wb.count());
        assert_eq!(
            wa.mean().map(f64::to_bits),
            wb.mean().map(f64::to_bits),
            "run {}: Welford mean must be bit-identical",
            a.label
        );
        assert_eq!(
            wa.variance().map(f64::to_bits),
            wb.variance().map(f64::to_bits),
            "run {}: Welford variance must be bit-identical",
            a.label
        );
        let (va, vb) = (qa.values().unwrap(), qb.values().unwrap());
        assert_eq!(va.len(), vb.len());
        assert!(
            va.iter()
                .zip(vb.iter())
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "run {}: exact quantile sample must be bit-identical",
            a.label
        );
    }
}

#[test]
fn campaign_output_is_oversubscription_invariant() {
    // More workers than runs: excess threads must be clamped away, not
    // spin on an empty queue or change the merge.
    let c = representative_campaign(7);
    assert_eq!(
        c.execute_with_threads(2).to_tsv(),
        c.execute_with_threads(64).to_tsv()
    );
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(seed: u64, name: &str) {
    let got = representative_campaign(seed)
        .execute_with_threads(4)
        .to_tsv();
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &got).unwrap();
        eprintln!("rewrote {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run scripts/update_golden.sh",
            path.display()
        )
    });
    if got != want {
        // A full assert_eq! dump of two multi-KB TSVs is unreadable;
        // point at the first divergent line instead.
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            assert_eq!(
                g,
                w,
                "golden {} diverges at line {} (intentional change? run scripts/update_golden.sh)",
                name,
                i + 1
            );
        }
        panic!(
            "golden {name} length changed: {} vs {} lines; run scripts/update_golden.sh if intentional",
            got.lines().count(),
            want.lines().count()
        );
    }
}

#[test]
fn golden_trace_seed42_matches() {
    check_golden(42, "campaign_seed42.tsv");
}

#[test]
fn golden_trace_seed7_matches() {
    check_golden(7, "campaign_seed7.tsv");
}
