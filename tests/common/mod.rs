//! Helpers shared by the determinism and telemetry conformance suites:
//! the representative campaign and the golden-file comparison protocol.

#![allow(dead_code)] // each test binary uses its own subset

use cdnsim::ServiceConfig;
use emulator::dataset_a::{DatasetA, KeywordPolicy};
use emulator::dataset_b::DatasetB;
use emulator::{Campaign, Design, Scenario};
use simcore::time::SimDuration;
use std::path::PathBuf;

/// A small campaign touching every design family: both stock dataset
/// designs, both service archetypes, a custom closure design, and one
/// run with raw-capture enabled.
pub fn representative_campaign(seed: u64) -> Campaign {
    representative_campaign_with_metrics(seed, None)
}

/// [`representative_campaign`] with an explicit per-run telemetry
/// override, so conformance tests are independent of the ambient
/// `FECDN_METRICS` value.
pub fn representative_campaign_with_metrics(seed: u64, metrics: Option<bool>) -> Campaign {
    let mut c = Campaign::new(Scenario::small(seed));
    c.push(
        "a/bing",
        ServiceConfig::bing_like(seed),
        Design::DatasetA(DatasetA {
            repeats: 2,
            spacing: SimDuration::from_secs(8),
            keywords: KeywordPolicy::Fixed(0),
        }),
    )
    .metrics = metrics;
    c.push(
        "a/google",
        ServiceConfig::google_like(seed),
        Design::DatasetA(DatasetA {
            repeats: 2,
            spacing: SimDuration::from_secs(8),
            keywords: KeywordPolicy::RoundRobin(5),
        }),
    )
    .metrics = metrics;
    c.push(
        "b/fixed-fe",
        ServiceConfig::google_like(seed),
        Design::DatasetB(DatasetB::against(0).with_repeats(3)),
    )
    .metrics = metrics;
    let run = c.push(
        "custom/close-pair",
        ServiceConfig::bing_like(seed),
        Design::custom(|sim| {
            sim.with(|w, net| {
                let fe = w.default_fe(0);
                let be = w.be_of_fe(fe);
                w.prewarm(net, fe, be, 2);
                for r in 0..4u64 {
                    w.schedule_query(
                        net,
                        SimDuration::from_millis(1_000 + r * 7_000),
                        cdnsim::QuerySpec {
                            client: 0,
                            keyword: r,
                            fixed_fe: Some(fe),
                            instant_followup: false,
                        },
                    );
                }
            });
        }),
    );
    run.keep_raw = true;
    run.metrics = metrics;
    c
}

/// Path of a committed golden file.
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `got` against the committed golden `name`, honoring
/// `UPDATE_GOLDEN` and pointing at the first divergent line on
/// mismatch (a full assert_eq! dump of two multi-KB TSVs is
/// unreadable). `context` names the configuration under test so a
/// failure says which variant diverged.
pub fn compare_golden(got: &str, name: &str, context: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, got).unwrap();
        eprintln!("rewrote {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run scripts/update_golden.sh",
            path.display()
        )
    });
    if got != want {
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            assert_eq!(
                g,
                w,
                "golden {} diverges at line {} under {} (intentional change? run scripts/update_golden.sh)",
                name,
                i + 1,
                context,
            );
        }
        panic!(
            "golden {name} length changed under {context}: {} vs {} lines; run scripts/update_golden.sh if intentional",
            got.lines().count(),
            want.lines().count()
        );
    }
}
