//! Exact `QueryOutcome` bookkeeping under scripted faults.
//!
//! Each scenario pins the *entire* outcome tally of a fault campaign,
//! not just its sign: the fault windows, deadlines and backoff bounds
//! are chosen so the outcome of every query is analytically forced.
//! With a 30% backoff jitter, attempt k's start time lies in a known
//! interval; the windows below keep those intervals strictly inside or
//! strictly outside the outage, so the retry count cannot vary with the
//! seed. The three runs execute as one sharded campaign — the tallies
//! must come out exact no matter which worker ran which world.

use cdnsim::{QueryOutcome, QuerySpec, RetryPolicy, ServiceConfig};
use emulator::{Campaign, Design, Scenario};
use nettopo::FaultPlan;
use simcore::time::{SimDuration, SimTime};

const QUERIES: usize = 3;

/// Three clients fire one query each at t = 1 ms via their default FE.
fn burst_design() -> Design {
    Design::custom(|sim| {
        sim.with(|w, net| {
            for client in 0..QUERIES {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1),
                    QuerySpec {
                        client,
                        keyword: client as u64,
                        fixed_fe: None,
                        instant_followup: false,
                    },
                );
            }
        });
    })
}

/// FE/BE site counts are pure geometry — read them from a throwaway
/// world so fault plans can cover every site.
fn site_counts(scenario: &Scenario, cfg: &ServiceConfig) -> (usize, usize) {
    let mut probe = scenario.build_sim(cfg.clone());
    let fes = probe.with(|w, _| w.fe_count());
    (fes, cfg.be_sites.len())
}

#[test]
fn fault_campaign_tallies_are_exact() {
    let seed = 4242;
    let scenario = Scenario::small(seed);
    let base = ServiceConfig::google_like(seed);
    let (n_fes, n_bes) = site_counts(&scenario, &base);

    // Scenario 1 — Retried(2), exactly. All FEs dark over [0 ms, 5 s).
    // Attempt 1 starts at 1 ms, abandoned at its 2 s deadline. Backoff
    // 500 ms ±30% ⇒ attempt 2 starts in [2.35 s, 2.65 s], still dark,
    // abandoned in [4.35 s, 4.65 s]. Doubled backoff ±30% ⇒ attempt 3
    // starts in [5.05 s, 5.95 s], after the outage lifts ⇒ success on
    // the second retry for every jitter draw.
    let mut retry_plan = FaultPlan::default();
    for fe in 0..n_fes {
        retry_plan = retry_plan.fe_outage(fe, SimTime::ZERO, SimTime::from_millis(5_000));
    }
    let retried_cfg = base
        .clone()
        .with_faults(retry_plan)
        .with_client_retry(RetryPolicy {
            deadline: SimDuration::from_millis(2_000),
            max_retries: 3,
            base_backoff: SimDuration::from_millis(500),
            jitter: 0.3,
        });

    // Scenario 2 — TimedOut, exactly. All FEs dark for 60 s, one retry
    // allowed: both attempts fall inside the outage and the budget is
    // exhausted by ~2.3 s.
    let mut timeout_plan = FaultPlan::default();
    for fe in 0..n_fes {
        timeout_plan = timeout_plan.fe_outage(fe, SimTime::ZERO, SimTime::from_millis(60_000));
    }
    let timed_out_cfg = base
        .clone()
        .with_faults(timeout_plan)
        .with_client_retry(RetryPolicy {
            deadline: SimDuration::from_millis(1_000),
            max_retries: 1,
            base_backoff: SimDuration::from_millis(200),
            jitter: 0.3,
        });

    // Scenario 3 — Degraded, exactly. All BE sites dark for 60 s with a
    // 1 s fetch deadline at the FE: the static portion is served from
    // the FE cache and the dynamic portion is replaced by the error
    // stub. No client retry is configured, so nothing else can happen.
    let mut degrade_plan = FaultPlan::default();
    for be in 0..n_bes {
        degrade_plan = degrade_plan.be_outage(be, SimTime::ZERO, SimTime::from_millis(60_000));
    }
    let degraded_cfg = base
        .with_faults(degrade_plan)
        .with_fe_fetch_deadline(SimDuration::from_millis(1_000));

    let mut c = Campaign::new(scenario);
    for (label, cfg) in [
        ("faults/retried", retried_cfg),
        ("faults/timed-out", timed_out_cfg),
        ("faults/degraded", degraded_cfg),
    ] {
        c.push(label, cfg, burst_design()).keep_raw = true;
    }
    let report = c.execute_with_threads(2);

    // ---- Retried(2) for every query ----
    let retried = report.get("faults/retried").unwrap();
    let t = retried.tally;
    assert_eq!(
        (t.ok, t.degraded, t.retried, t.timed_out),
        (0, 0, QUERIES, 0),
        "{t:?}"
    );
    assert_eq!(retried.raw.len(), QUERIES);
    for cq in &retried.raw {
        assert_eq!(
            cq.outcome,
            QueryOutcome::Retried(2),
            "client {} succeeded on the wrong attempt",
            cq.client
        );
        assert!(
            cq.t_done >= SimTime::from_millis(5_000),
            "success before the outage lifted"
        );
    }

    // ---- TimedOut for every query ----
    let timed_out = report.get("faults/timed-out").unwrap();
    let t = timed_out.tally;
    assert_eq!(
        (t.ok, t.degraded, t.retried, t.timed_out),
        (0, 0, 0, QUERIES),
        "{t:?}"
    );
    assert!(timed_out
        .raw
        .iter()
        .all(|cq| cq.outcome == QueryOutcome::TimedOut { attempts: 2 }));
    // Timed-out sessions have no complete timeline; the accounting
    // identity (processed + skipped = total) must still close.
    assert_eq!(timed_out.queries.len() + t.skipped, t.total());

    // ---- Degraded for every query ----
    let degraded = report.get("faults/degraded").unwrap();
    let t = degraded.tally;
    assert_eq!(
        (t.ok, t.degraded, t.retried, t.timed_out),
        (0, QUERIES, 0, 0),
        "{t:?}"
    );
    for cq in &degraded.raw {
        assert_eq!(cq.outcome, QueryOutcome::Degraded);
        assert_eq!(cq.plan.dynamic_bytes, cdnsim::world::DEGRADED_STUB_BYTES);
    }

    // The TSV carries the outcome column and the per-run tally comment
    // lines, so fault accounting is part of the golden-diffable surface.
    let tsv = report.to_tsv();
    assert!(tsv.contains("# run=faults/retried ok=0 degraded=0 retried=3 timed_out=0"));
    assert!(tsv.contains("Retried(2)"));
}

#[test]
fn fault_tallies_survive_resharding() {
    // Same campaign, serial vs maximally parallel: identical tallies and
    // identical TSV (the outcome bookkeeping lives inside the shard).
    let seed = 77;
    let scenario = Scenario::small(seed);
    let base = ServiceConfig::google_like(seed);
    let (n_fes, _) = site_counts(&scenario, &base);
    let mut plan = FaultPlan::default();
    for fe in 0..n_fes {
        plan = plan.fe_outage(fe, SimTime::ZERO, SimTime::from_millis(5_000));
    }
    let cfg = base.with_faults(plan).with_client_retry(RetryPolicy {
        deadline: SimDuration::from_millis(2_000),
        max_retries: 3,
        base_backoff: SimDuration::from_millis(500),
        jitter: 0.3,
    });
    let mut c = Campaign::new(scenario);
    c.push("faults/a", cfg.clone(), burst_design());
    c.push("faults/b", cfg, burst_design());
    let serial = c.execute_with_threads(1);
    let parallel = c.execute_with_threads(4);
    assert_eq!(serial.to_tsv(), parallel.to_tsv());
    for label in ["faults/a", "faults/b"] {
        assert_eq!(
            serial.get(label).unwrap().tally,
            parallel.get(label).unwrap().tally
        );
    }
}
