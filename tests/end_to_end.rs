//! Integration: whole-campaign behaviours — determinism, service
//! contrasts, ablations.

use capture::Classifier;
use emulator::dataset_a::{DatasetA, KeywordPolicy};
use fecdn::prelude::*;

fn dataset_a(seed: u64, cfg: ServiceConfig) -> Vec<ProcessedQuery> {
    let scenario = Scenario::with_size(seed, 24, 300);
    DatasetA {
        repeats: 5,
        spacing: SimDuration::from_secs(8),
        keywords: KeywordPolicy::Fixed(0),
    }
    .run(&scenario, cfg, &Classifier::ByMarker)
}

#[test]
fn campaigns_are_bit_deterministic() {
    let a = dataset_a(21, ServiceConfig::bing_like(21));
    let b = dataset_a(21, ServiceConfig::bing_like(21));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.qid, y.qid);
        assert_eq!(x.params, y.params);
        assert_eq!(x.proc_ms, y.proc_ms);
    }
}

#[test]
fn different_seeds_differ() {
    let a = dataset_a(22, ServiceConfig::bing_like(22));
    let b = dataset_a(23, ServiceConfig::bing_like(23));
    let same = a
        .iter()
        .zip(&b)
        .filter(|(x, y)| x.params.t_dynamic_ms == y.params.t_dynamic_ms)
        .count();
    assert!(same < a.len() / 4, "{same}/{} identical", a.len());
}

#[test]
fn services_contrast_as_the_paper_reports() {
    let bing = dataset_a(24, ServiceConfig::bing_like(24));
    let google = dataset_a(24, ServiceConfig::google_like(24));
    let med = |v: Vec<f64>| stats::quantile::median(&v).unwrap();
    // Closer FEs...
    let b_rtt = med(bing.iter().map(|q| q.params.rtt_ms).collect());
    let g_rtt = med(google.iter().map(|q| q.params.rtt_ms).collect());
    assert!(b_rtt < g_rtt, "bing rtt {b_rtt} vs google {g_rtt}");
    // ...yet slower end-to-end.
    let b_td = med(bing.iter().map(|q| q.params.t_dynamic_ms).collect());
    let g_td = med(google.iter().map(|q| q.params.t_dynamic_ms).collect());
    assert!(b_td > 1.5 * g_td, "bing Tdynamic {b_td} vs google {g_td}");
    let b_ov = med(bing.iter().map(|q| q.params.overall_ms).collect());
    let g_ov = med(google.iter().map(|q| q.params.overall_ms).collect());
    assert!(b_ov > g_ov);
}

#[test]
fn overall_delay_decomposes_sanely() {
    // overall = handshake + request + response delivery; it must exceed
    // Tdynamic plus one RTT and be finite/bounded for every query.
    let out = dataset_a(25, ServiceConfig::google_like(25));
    for q in &out {
        assert!(q.params.overall_ms >= q.params.t_dynamic_ms + q.params.rtt_ms * 0.9);
        assert!(
            q.params.overall_ms < 60_000.0,
            "query took {} ms",
            q.params.overall_ms
        );
    }
}

#[test]
fn no_split_ablation_removes_fetch_ground_truth() {
    let out = dataset_a(26, ServiceConfig::google_like(26).without_split_tcp());
    assert!(!out.is_empty());
    for q in &out {
        assert!(q.fe.is_none());
        assert!(q.true_fetch_ms.is_none());
        assert!(q.params.is_consistent(0.5));
    }
}

#[test]
fn static_cache_ablation_collapses_tdelta() {
    let with_cache = dataset_a(27, ServiceConfig::bing_like(27));
    let without = dataset_a(27, ServiceConfig::bing_like(27).without_static_cache());
    let med = |v: Vec<f64>| stats::quantile::median(&v).unwrap();
    let dl_with = med(with_cache
        .iter()
        .filter(|q| q.params.rtt_ms < 40.0)
        .map(|q| q.params.t_delta_ms)
        .collect());
    let dl_without = med(without
        .iter()
        .filter(|q| q.params.rtt_ms < 40.0)
        .map(|q| q.params.t_delta_ms)
        .collect());
    assert!(dl_with > 30.0, "cached Tdelta {dl_with}");
    assert!(dl_without < 5.0, "uncached Tdelta {dl_without}");
}

#[test]
fn response_sizes_do_not_depend_on_the_client() {
    // Footnote 2 of the paper. Same keyword from every client → total
    // bytes within a tight band regardless of vantage.
    let out = dataset_a(28, ServiceConfig::google_like(28));
    let sizes: Vec<f64> = out.iter().map(|q| q.params.total_bytes as f64).collect();
    let s = stats::quantile::Summary::of(&sizes).unwrap();
    assert!(
        s.cv().unwrap() < 0.15,
        "sizes should be client-independent, cv {:?}",
        s.cv()
    );
}

#[test]
fn heavy_concurrency_one_fe_still_completes() {
    // Stress: all clients fire at the same fixed FE nearly
    // simultaneously; the FE pool must scale out and every query finish.
    let scenario = Scenario::with_size(29, 24, 100);
    let cfg = ServiceConfig::bing_like(29);
    let mut sim = scenario.build_sim(cfg);
    sim.with(|w, net| {
        let fe = w.default_fe(0);
        for c in 0..24usize {
            w.schedule_query(
                net,
                SimDuration::from_millis(1 + c as u64 * 3),
                QuerySpec {
                    client: c,
                    keyword: c as u64,
                    fixed_fe: Some(fe),
                    instant_followup: false,
                },
            );
        }
    });
    let out = run_collect(&mut sim, &Classifier::ByMarker);
    assert_eq!(out.len(), 24);
}
