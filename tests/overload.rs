//! Overload-robustness conformance: golden invariance with the
//! subsystem disabled (or armed-but-inert) and chaos properties with it
//! enabled.
//!
//! The contract has two halves. First, everything in the overload
//! subsystem is opt-in: a config that never sets a policy — or sets
//! policies that never trigger — must reproduce the pre-overload
//! campaign TSV byte for byte at any `FECDN_THREADS`. Second, with
//! arbitrary fault plans and arbitrary policy combinations the world
//! must never panic, never leak an in-flight slot, and always conserve
//! the outcome accounting identity
//! `ok + degraded + retried + timed_out + shed == scheduled`.

mod common;

use cdnsim::{BreakerPolicy, QueryOutcome, QuerySpec, RetryBudget, RetryPolicy, ServiceConfig};
use common::representative_campaign;
use emulator::{Campaign, Design, Scenario};
use nettopo::{BurstLossParams, FaultPlan};
use proptest::prelude::*;
use simcore::time::{SimDuration, SimTime};

/// Arms every overload policy, tuned to be inert: a watermark no burst
/// reaches, a hedge delay longer than any fetch, a breaker that can't
/// trip without failures, and a retry budget that is never drawn from
/// (no retry policy is configured).
fn armed_but_inert(cfg: ServiceConfig) -> ServiceConfig {
    cfg.with_admission_control(1_000_000)
        .with_retry_budget(RetryBudget::default())
        .with_hedged_fetches(SimDuration::from_secs(3_600))
        .with_circuit_breaker(BreakerPolicy::default())
}

/// The representative campaign with the armed-but-inert overload block
/// attached to every run.
fn inert_overload_campaign(seed: u64) -> Campaign {
    use emulator::dataset_a::{DatasetA, KeywordPolicy};
    use emulator::dataset_b::DatasetB;
    let mut c = Campaign::new(Scenario::small(seed));
    c.push(
        "a/bing",
        armed_but_inert(ServiceConfig::bing_like(seed)),
        Design::DatasetA(DatasetA {
            repeats: 2,
            spacing: SimDuration::from_secs(8),
            keywords: KeywordPolicy::Fixed(0),
        }),
    );
    c.push(
        "a/google",
        armed_but_inert(ServiceConfig::google_like(seed)),
        Design::DatasetA(DatasetA {
            repeats: 2,
            spacing: SimDuration::from_secs(8),
            keywords: KeywordPolicy::RoundRobin(5),
        }),
    );
    c.push(
        "b/fixed-fe",
        armed_but_inert(ServiceConfig::google_like(seed)),
        Design::DatasetB(DatasetB::against(0).with_repeats(3)),
    );
    c.push(
        "custom/close-pair",
        armed_but_inert(ServiceConfig::bing_like(seed)),
        Design::custom(|sim| {
            sim.with(|w, net| {
                let fe = w.default_fe(0);
                let be = w.be_of_fe(fe);
                w.prewarm(net, fe, be, 2);
                for r in 0..4u64 {
                    w.schedule_query(
                        net,
                        SimDuration::from_millis(1_000 + r * 7_000),
                        QuerySpec {
                            client: 0,
                            keyword: r,
                            fixed_fe: Some(fe),
                            instant_followup: false,
                        },
                    );
                }
            });
        }),
    )
    .keep_raw = true;
    c
}

#[test]
fn inert_overload_policies_leave_campaign_tsv_byte_identical() {
    // Same seed, same designs; the only difference is the armed-but-
    // inert overload policy block. The TSVs must match byte for byte —
    // this is the golden-invariance guarantee with policies attached.
    let plain = representative_campaign(4242).execute().to_tsv();
    let guarded = inert_overload_campaign(4242).execute().to_tsv();
    assert_eq!(plain, guarded);

    // And thread count must not matter on the guarded side either.
    let serial = inert_overload_campaign(4242)
        .execute_with_threads(1)
        .to_tsv();
    let parallel = inert_overload_campaign(4242)
        .execute_with_threads(4)
        .to_tsv();
    assert_eq!(serial, parallel);
    assert_eq!(serial, plain);
}

#[test]
fn disabled_overload_matches_committed_golden() {
    // The default config never constructs any overload state, so the
    // committed golden from before the subsystem existed must still
    // reproduce exactly — and so must the armed-but-inert variant. (The
    // same golden is pinned by the determinism suite; asserting it here
    // makes an invariance failure point at the overload subsystem
    // directly.)
    let plain = representative_campaign(42).execute_with_threads(4).to_tsv();
    common::compare_golden(&plain, "campaign_seed42.tsv", "overload subsystem disabled");
    let guarded = inert_overload_campaign(42).execute_with_threads(4).to_tsv();
    common::compare_golden(
        &guarded,
        "campaign_seed42.tsv",
        "overload policies armed but inert",
    );
}

/// One scheduled burst: `n` clients fire at t = 1 ms, half pinned to
/// client 0's default FE so admission control and the load model see
/// real contention.
fn burst_design(n: usize) -> Design {
    Design::custom(move |sim| {
        sim.with(|w, net| {
            let fe = w.default_fe(0);
            for client in 0..n {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1 + (client as u64 % 3) * 40),
                    QuerySpec {
                        client,
                        keyword: client as u64,
                        fixed_fe: if client % 2 == 0 { Some(fe) } else { None },
                        instant_followup: false,
                    },
                );
            }
        });
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chaos: random fault plans against random overload-policy
    /// combinations. The campaign must complete without panicking, the
    /// accounting identity must close, and serial and 4-way execution
    /// must agree byte-for-byte.
    #[test]
    fn chaos_faults_and_policies_conserve_accounting(
        seed in 0u64..10_000,
        n_queries in 4usize..10,
        fault_bits in 0u32..32,     // 5 fault kinds, one bit each
        with_model in 0u32..2,
        watermark in 0u32..4,       // 0 = no admission control
        with_retry in 0u32..2,
        budget_sel in 0u32..4,      // 0 = no budget, else max_tokens = sel - 1
        hedge_ms in 0u64..400,      // 0 = no hedging
        breaker_threshold in 0u32..4, // 0 = no breaker
        deadline_ms in 300u64..2_000,
    ) {
        let mut plan = FaultPlan::default();
        if fault_bits & 1 != 0 {
            plan = plan.fe_outage(0, SimTime::from_millis(50), SimTime::from_millis(900));
        }
        if fault_bits & 2 != 0 {
            plan = plan.fe_brownout(1, SimTime::ZERO, SimTime::from_millis(2_000), 8.0);
        }
        if fault_bits & 4 != 0 {
            plan = plan.be_outage(0, SimTime::from_millis(20), SimTime::from_millis(1_500));
        }
        if fault_bits & 8 != 0 {
            plan = plan.fe_capacity_dip(0, SimTime::ZERO, SimTime::from_millis(3_000), 0.25);
        }
        if fault_bits & 16 != 0 {
            plan = plan.client_burst_loss(
                0,
                0,
                SimTime::ZERO,
                SimTime::from_millis(5_000),
                BurstLossParams::moderate(),
            );
        }

        let mut cfg = ServiceConfig::google_like(seed)
            .with_faults(plan)
            .with_fe_fetch_deadline(SimDuration::from_millis(deadline_ms));
        if with_model != 0 {
            cfg = cfg.with_load_model(cdnsim::LoadModel {
                fe_capacity: 2,
                be_capacity: 4,
                max_slowdown: 10.0,
            });
        }
        if watermark > 0 {
            cfg = cfg.with_admission_control(watermark);
        }
        // A client deadline is always armed — a blackholed peer
        // retransmits forever, so an unbounded client would keep the
        // event queue alive indefinitely. The chaos axis is whether
        // retries are allowed, not whether clients ever give up.
        cfg = cfg.with_client_retry(RetryPolicy {
            deadline: SimDuration::from_millis(deadline_ms * 2),
            max_retries: if with_retry != 0 { 2 } else { 0 },
            base_backoff: SimDuration::from_millis(150),
            jitter: 0.3,
        });
        if budget_sel > 0 {
            cfg = cfg.with_retry_budget(RetryBudget {
                max_tokens: (budget_sel - 1) as f64,
                refill_per_sec: 0.5,
            });
        }
        if hedge_ms > 0 {
            cfg = cfg.with_hedged_fetches(SimDuration::from_millis(hedge_ms));
        }
        if breaker_threshold > 0 {
            cfg = cfg.with_circuit_breaker(BreakerPolicy {
                failure_threshold: breaker_threshold,
                cooldown: SimDuration::from_millis(700),
            });
        }

        // 10 vantages so every chaos client index (n_queries < 10) is valid.
        let mut c = Campaign::new(Scenario::with_size(seed, 10, 60));
        c.push("chaos", cfg, burst_design(n_queries)).keep_raw = true;

        let serial = c.execute_with_threads(1);
        let parallel = c.execute_with_threads(4);
        prop_assert_eq!(serial.to_tsv(), parallel.to_tsv());

        let run = serial.get("chaos").unwrap();
        let t = run.tally;
        prop_assert_eq!(
            t.ok + t.degraded + t.retried + t.timed_out + t.shed,
            n_queries,
            "accounting leak: {:?}",
            t
        );
        prop_assert_eq!(t.total(), n_queries);
        prop_assert_eq!(run.raw.len(), n_queries);
        // Outcome rows and tally buckets must agree exactly.
        let shed = run
            .raw
            .iter()
            .filter(|cq| matches!(cq.outcome, QueryOutcome::Shed { .. }))
            .count();
        prop_assert_eq!(shed, t.shed);
        // Shed is impossible without admission control.
        if watermark == 0 {
            prop_assert_eq!(t.shed, 0);
        }
    }
}
