//! Property-based tests on the simulator core and the analysis
//! primitives.

use proptest::prelude::*;
use simcore::rng::Rng;
use stats::quantile::{median, quantile, Summary};
use stats::{gap_clusters, moving_median, BoxSummary, Ecdf};
use tcpsim::{App, ConnId, DeliveredSpan, End, Marker, Net, NodeId, PathParams, Sim, TcpOptions};

// ---------- TCP transfer properties ----------

struct Transfer {
    request: u64,
    response: u64,
    client_got: u64,
    server_got: u64,
    spans_seen: Vec<(u64, u32)>,
    done: bool,
}

impl App for Transfer {
    fn on_established(&mut self, net: &mut Net, conn: ConnId, end: End) {
        if end == End::A {
            net.send(conn, End::A, self.request, Marker::Request, 1);
        }
    }
    fn on_data(&mut self, net: &mut Net, conn: ConnId, end: End, spans: &[DeliveredSpan]) {
        let bytes: u64 = spans.iter().map(|s| s.len as u64).sum();
        match end {
            End::B => {
                self.server_got += bytes;
                if self.server_got == self.request {
                    net.send(conn, End::B, self.response, Marker::Static, 2);
                    net.close(conn, End::B);
                }
            }
            End::A => {
                for s in spans {
                    self.spans_seen.push((s.offset, s.len));
                }
                self.client_got += bytes;
            }
        }
    }
    fn on_fin(&mut self, net: &mut Net, conn: ConnId, end: End) {
        if end == End::A {
            self.done = true;
            net.close(conn, End::A);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every byte of every transfer arrives exactly once, in order, for
    /// any RTT, loss rate, transfer size and initial window.
    #[test]
    fn tcp_delivers_every_byte_exactly_once(
        seed in 0u64..5_000,
        rtt_ms in 1.0f64..300.0,
        loss in 0.0f64..0.12,
        request in 100u64..3_000,
        response in 1_000u64..120_000,
        iw in 1u32..12,
    ) {
        let app = Transfer {
            request,
            response,
            client_got: 0,
            server_got: 0,
            spans_seen: Vec::new(),
            done: false,
        };
        let mut sim = Sim::new(seed, app);
        sim.net().open(
            NodeId(1),
            NodeId(2),
            PathParams::lossy(rtt_ms, loss),
            TcpOptions::default(),
            TcpOptions::default().with_initial_window(iw),
            1,
        );
        sim.run();
        let app = sim.into_app();
        prop_assert_eq!(app.server_got, request);
        prop_assert_eq!(app.client_got, response);
        prop_assert!(app.done, "client must see the FIN");
        // In-order, gapless, exactly-once delivery.
        let mut expected = 0u64;
        for (off, len) in &app.spans_seen {
            prop_assert_eq!(*off, expected, "delivery gap or overlap");
            expected += *len as u64;
        }
        prop_assert_eq!(expected, response);
    }

    /// Links are FIFO: despite per-packet jitter, arrivals at each node
    /// never reorder (timestamps per (node, Rx) stream are
    /// non-decreasing, and data seq numbers of first-transmissions
    /// arrive in order on clean paths).
    #[test]
    fn links_deliver_fifo_under_jitter(
        seed in 0u64..2_000,
        rtt_ms in 1.0f64..150.0,
        response in 5_000u64..80_000,
    ) {
        use simcore::dist::Dist;
        let mut sim = Sim::new(seed, Transfer {
            request: 400,
            response,
            client_got: 0,
            server_got: 0,
            spans_seen: Vec::new(),
            done: false,
        });
        sim.net().trace_mut().set_enabled(true);
        let path = PathParams {
            base_owd_ms: rtt_ms / 2.0,
            // Heavy jitter relative to serialization gaps.
            jitter_ms: Dist::TruncatedBelow {
                lo: 0.0,
                inner: Box::new(Dist::Exponential { mean: 1.0 }),
            },
            loss: 0.0,
            bw_mbps: 1_000.0,
        };
        sim.net().open(
            NodeId(1),
            NodeId(2),
            path,
            TcpOptions::default(),
            TcpOptions::default(),
            1,
        );
        sim.run();
        let trace = sim.net().trace_mut().take_session(1);
        // Per-node Rx timestamps non-decreasing.
        for node in [NodeId(1), NodeId(2)] {
            let mut last = None;
            for ev in trace.iter().filter(|e| e.node == node && e.dir == tcpsim::PktDir::Rx) {
                if let Some(prev) = last {
                    prop_assert!(ev.t >= prev, "Rx reordered at {node:?}");
                }
                last = Some(ev.t);
            }
        }
        // Clean path ⇒ no retransmissions ⇒ client-received data seqs
        // strictly increase.
        let mut prev_seq = None;
        for ev in trace.iter().filter(|e| {
            e.node == NodeId(1) && e.dir == tcpsim::PktDir::Rx && e.kind == tcpsim::PktKind::Data
        }) {
            if let Some(p) = prev_seq {
                prop_assert!(ev.seq > p, "data seq went backwards: {} after {p}", ev.seq);
            }
            prev_seq = Some(ev.seq);
        }
    }

    /// The simulation is replay-deterministic for any parameters.
    #[test]
    fn tcp_transfer_is_deterministic(
        seed in 0u64..1_000,
        rtt_ms in 1.0f64..200.0,
        loss in 0.0f64..0.08,
        response in 1_000u64..50_000,
    ) {
        let run = || {
            let mut sim = Sim::new(seed, Transfer {
                request: 500,
                response,
                client_got: 0,
                server_got: 0,
                spans_seen: Vec::new(),
                done: false,
            });
            sim.net().open(
                NodeId(1),
                NodeId(2),
                PathParams::lossy(rtt_ms, loss),
                TcpOptions::default(),
                TcpOptions::default(),
                1,
            );
            sim.run();
            sim.net().now()
        };
        prop_assert_eq!(run(), run());
    }
}

// ---------- sender chunk-map lookup properties ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `meta_for_range` with its resume cursor and ACK-driven pruning
    /// returns exactly the spans a naive rescan of the full chunk map
    /// would, for any chunk layout and any query pattern — including the
    /// out-of-order `from` offsets retransmissions produce, and queries
    /// interleaved with ACK advances that prune the map underneath the
    /// cursor.
    #[test]
    fn meta_for_range_cursor_matches_naive_rescan(
        chunk_lens in prop::collection::vec(1u64..2500, 1..24),
        ops in prop::collection::vec(
            (0.0f64..1.0, 1u32..3000, 0u8..2),
            1..60,
        ),
    ) {
        use simcore::time::SimTime;
        use tcpsim::endpoint::Endpoint;
        use tcpsim::MetaSpan;

        let markers = [Marker::Static, Marker::Dynamic, Marker::Request];
        let mut ep = Endpoint::new(TcpOptions::default());
        // The immutable reference layout: (start, end, marker, content).
        let mut layout = Vec::new();
        let mut off = 0u64;
        for (i, &len) in chunk_lens.iter().enumerate() {
            let marker = markers[i % markers.len()];
            ep.push_chunk(len, marker, i as u64);
            layout.push((off, off + len, marker, i as u64));
            off += len;
        }
        let total = off;
        // Pretend everything has been transmitted so arbitrary ACKs up
        // to `total` are plausible.
        ep.snd_nxt = total;

        let naive = |from: u64, len: u32| -> Vec<MetaSpan> {
            let to = from + len as u64;
            layout
                .iter()
                .filter(|&&(s, e, _, _)| e > from && s < to)
                .map(|&(s, e, marker, content)| {
                    let lo = from.max(s);
                    let hi = to.min(e);
                    MetaSpan { offset: lo, len: (hi - lo) as u32, marker, content }
                })
                .collect()
        };

        let mut una = 0u64;
        for (frac, qlen, advance) in ops {
            let advance = advance == 1;
            if una >= total {
                break;
            }
            // Queries land anywhere in the un-ACKed window, in any
            // order — a retransmission is a query far below snd_nxt.
            let from = una + ((total - una - 1) as f64 * frac) as u64;
            let len = (qlen as u64).min(total - from).max(1) as u32;
            let got = ep.meta_for_range(from, len);
            let want = naive(from, len);
            prop_assert_eq!(got.as_slice(), want.as_slice(),
                "from={} len={} una={}", from, len, una);
            prop_assert_eq!(
                got.iter().map(|m| m.len as u64).sum::<u64>(),
                len as u64,
                "spans must tile the queried range exactly"
            );
            if advance && from > una {
                // Cumulative ACK up to `from`: prunes chunks wholly
                // below it; later queries stay at or above the frontier.
                ep.on_ack(from, u64::MAX, SimTime::ZERO, false);
                prop_assert_eq!(ep.snd_una, from);
                una = from;
            }
        }
        // Pruning must never discard a chunk the window can still touch.
        prop_assert!(ep.chunks_base <= una.max(1));
    }
}

// ---------- statistics properties ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Quantiles are monotone in q and bounded by the data range.
    #[test]
    fn quantiles_monotone_and_bounded(
        mut xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo_q).unwrap();
        let b = quantile(&xs, hi_q).unwrap();
        prop_assert!(a <= b + 1e-9);
        xs.sort_by(|p, q| p.partial_cmp(q).unwrap());
        prop_assert!(a >= xs[0] - 1e-9);
        prop_assert!(b <= xs[xs.len() - 1] + 1e-9);
    }

    /// The moving median stays within the window's min/max.
    #[test]
    fn moving_median_bounded_by_window(
        xs in prop::collection::vec(-1e3f64..1e3, 1..100),
        window in 1usize..20,
    ) {
        let mm = moving_median(&xs, window);
        prop_assert_eq!(mm.len(), xs.len());
        for (i, &v) in mm.iter().enumerate() {
            let start = i.saturating_sub(window - 1);
            let w = &xs[start..=i];
            let lo = w.iter().cloned().fold(f64::MAX, f64::min);
            let hi = w.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    /// ECDF is a valid CDF: monotone, 0 below min, 1 at max.
    #[test]
    fn ecdf_is_a_cdf(xs in prop::collection::vec(-1e4f64..1e4, 1..300)) {
        let e = Ecdf::new(&xs);
        let lo = xs.iter().cloned().fold(f64::MAX, f64::min);
        let hi = xs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(e.fraction_le(lo - 1.0), 0.0);
        prop_assert_eq!(e.fraction_le(hi), 1.0);
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = lo + (hi - lo) * i as f64 / 20.0;
            let f = e.fraction_le(x);
            prop_assert!(f >= prev - 1e-12);
            prev = f;
        }
    }

    /// Box summaries order their landmarks and classify outliers
    /// consistently.
    #[test]
    fn box_summary_invariants(xs in prop::collection::vec(-1e4f64..1e4, 1..200)) {
        let b = BoxSummary::of(&xs).unwrap();
        prop_assert!(b.whisker_lo <= b.q1 + 1e-9);
        prop_assert!(b.q1 <= b.median + 1e-9);
        prop_assert!(b.median <= b.q3 + 1e-9);
        prop_assert!(b.q3 <= b.whisker_hi + 1e-9);
        prop_assert_eq!(
            b.outliers.len() + xs.iter().filter(|&&x| x >= b.whisker_lo && x <= b.whisker_hi).count(),
            xs.len()
        );
    }

    /// Gap clustering partitions the input and respects the gap.
    #[test]
    fn gap_clusters_partition(
        mut ts in prop::collection::vec(0.0f64..1e4, 1..200),
        gap in 0.1f64..500.0,
    ) {
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let clusters = gap_clusters(&ts, gap);
        // Partition property.
        let mut covered = 0usize;
        for c in &clusters {
            prop_assert_eq!(c.start_idx, covered);
            covered = c.end_idx;
            // Within a cluster, consecutive gaps ≤ gap.
            for w in ts[c.start_idx..c.end_idx].windows(2) {
                prop_assert!(w[1] - w[0] <= gap + 1e-9);
            }
        }
        prop_assert_eq!(covered, ts.len());
        // Between clusters, the gap is exceeded.
        for pair in clusters.windows(2) {
            prop_assert!(pair[1].t_first - pair[0].t_last > gap);
        }
    }

    /// Summary and median agree.
    #[test]
    fn summary_median_consistent(xs in prop::collection::vec(-1e4f64..1e4, 1..200)) {
        let s = Summary::of(&xs).unwrap();
        prop_assert_eq!(s.median, median(&xs).unwrap());
        prop_assert!(s.min <= s.median && s.median <= s.max);
    }

    /// PRNG streams: same name = same stream, different names diverge.
    #[test]
    fn rng_streams_stable(seed in 0u64..u64::MAX, name in "[a-z]{1,12}") {
        let mut a = Rng::from_seed_and_name(seed, &name);
        let mut b = Rng::from_seed_and_name(seed, &name);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::from_seed_and_name(seed, &format!("{name}x"));
        let mut a2 = Rng::from_seed_and_name(seed, &name);
        let same = (0..16).filter(|_| a2.next_u64() == c.next_u64()).count();
        prop_assert!(same < 4);
    }
}

// ---------- streaming reducer properties ----------
//
// The streaming result pipeline (DESIGN.md §8) rests on the claim that
// the online reducers in `stats::streaming` agree with the batch
// `stats::quantile` functions, for any input and for any sharding of
// that input merged back in descriptor order. These properties pin it.

/// Splits `xs` into contiguous shards at arbitrary cut points (the way
/// the campaign runner partitions work), folds each shard into its own
/// accumulator via `push`, then merges left-to-right (descriptor order)
/// via `merge`.
fn fold_sharded<A>(
    xs: &[f64],
    cuts: &[usize],
    mut make: impl FnMut() -> A,
    mut push: impl FnMut(&mut A, f64),
    mut merge: impl FnMut(&mut A, &A),
) -> A {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (xs.len() + 1)).collect();
    bounds.push(0);
    bounds.push(xs.len());
    bounds.sort_unstable();
    let mut merged = make();
    for w in bounds.windows(2) {
        let mut shard = make();
        for &x in &xs[w[0]..w[1]] {
            push(&mut shard, x);
        }
        merge(&mut merged, &shard);
    }
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Welford agrees with the two-pass batch mean/variance for any
    /// input and any shard split (Chan's combine is order-robust up to
    /// floating-point noise, which the tolerance absorbs).
    #[test]
    fn welford_matches_batch_under_sharding(
        xs in prop::collection::vec(-1e4f64..1e4, 1..200),
        cuts in prop::collection::vec(0usize..200, 0..6),
    ) {
        use stats::Welford;
        let w = fold_sharded(
            &xs,
            &cuts,
            Welford::new,
            |a, x| a.push(x),
            |a, b| a.merge(b),
        );
        prop_assert_eq!(w.count(), xs.len() as u64);
        let m = stats::quantile::mean(&xs).unwrap();
        let v = stats::quantile::variance(&xs).unwrap();
        // Relative-plus-absolute tolerance: catastrophic cancellation in
        // the *batch* two-pass variance is the larger error source.
        let scale = xs.iter().fold(1.0f64, |s, x| s.max(x.abs()));
        prop_assert!((w.mean().unwrap() - m).abs() <= 1e-9 * scale + 1e-9);
        prop_assert!((w.variance().unwrap() - v).abs() <= 1e-7 * scale * scale + 1e-9);
        prop_assert_eq!(w.min().unwrap(), xs.iter().cloned().fold(f64::MAX, f64::min));
        prop_assert_eq!(w.max().unwrap(), xs.iter().cloned().fold(f64::MIN, f64::max));
    }

    /// An exact quantile accumulator sharded arbitrarily and merged in
    /// order reproduces the batch quantile *exactly* (same multiset,
    /// same `quantile_sorted` interpolation — bit-identical result),
    /// and its retained sample is the input in arrival order.
    #[test]
    fn exact_quantiles_match_batch_under_sharding(
        xs in prop::collection::vec(-1e4f64..1e4, 1..200),
        cuts in prop::collection::vec(0usize..200, 0..6),
        q in 0.0f64..1.0,
    ) {
        use stats::QuantileAcc;
        let acc = fold_sharded(
            &xs,
            &cuts,
            QuantileAcc::exact,
            |a, x| a.push(x),
            |a, b| a.merge(b),
        );
        prop_assert!(acc.is_exact());
        prop_assert_eq!(acc.count(), xs.len() as u64);
        // In-order merge of contiguous shards reconstructs arrival order.
        prop_assert_eq!(acc.values().unwrap(), xs.clone());
        let got = acc.quantile(q).unwrap();
        let want = quantile(&xs, q).unwrap();
        prop_assert_eq!(got.to_bits(), want.to_bits(),
            "exact accumulator must be bit-identical to batch: {got} vs {want}");
        prop_assert_eq!(
            acc.median().unwrap().to_bits(),
            median(&xs).unwrap().to_bits()
        );
    }

    /// A capped (sketch-mode) accumulator still yields quantiles inside
    /// the data range and monotone in q — the contract figures rely on
    /// when they opt out of exactness.
    #[test]
    fn capped_quantiles_bounded_and_monotone(
        xs in prop::collection::vec(-1e4f64..1e4, 1..400),
        cuts in prop::collection::vec(0usize..400, 0..6),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        use stats::QuantileAcc;
        let acc = fold_sharded(
            &xs,
            &cuts,
            || QuantileAcc::with_cap(32),
            |a, x| a.push(x),
            |a, b| a.merge(b),
        );
        prop_assert_eq!(acc.count(), xs.len() as u64);
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = acc.quantile(lo_q).unwrap();
        let b = acc.quantile(hi_q).unwrap();
        prop_assert!(a <= b + 1e-9);
        let lo = xs.iter().cloned().fold(f64::MAX, f64::min);
        let hi = xs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(a >= lo - 1e-9 && b <= hi + 1e-9);
    }

    /// Group-by-key medians, sharded and merged in order, equal the
    /// per-group batch medians bit-for-bit in exact mode.
    #[test]
    fn grouped_medians_match_batch_under_sharding(
        pairs in prop::collection::vec((0u64..8, -1e3f64..1e3), 1..150),
        cuts in prop::collection::vec(0usize..150, 0..6),
    ) {
        use stats::GroupedMedians;
        use std::collections::BTreeMap;
        // Shard the pair stream the same way fold_sharded shards values.
        let keys: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let vals: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let mut i = 0;
        let acc = fold_sharded(
            &vals,
            &cuts,
            GroupedMedians::exact,
            |a, x| {
                a.push(keys[i], x);
                i += 1;
            },
            |a, b| a.merge(b),
        );
        let mut by_key: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
        for &(k, v) in &pairs {
            by_key.entry(k).or_default().push(v);
        }
        prop_assert_eq!(acc.len(), by_key.len());
        for (k, vs) in &by_key {
            let got = acc.get(*k).unwrap().median().unwrap();
            let want = median(vs).unwrap();
            prop_assert_eq!(got.to_bits(), want.to_bits(), "key {}: {} vs {}", k, got, want);
        }
    }
}

// ---------- campaign seed-derivation and accounting properties ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-run seed derivation is a pure function of (root, label):
    /// the same descriptor always gets the same stream, and distinct
    /// labels never collide in practice.
    #[test]
    fn stream_seeds_stable_and_collision_free(
        root in 0u64..u64::MAX,
        names in prop::collection::vec("[a-z0-9/_-]{1,24}", 2..24),
    ) {
        use simcore::rng::stream_seed;
        let mut distinct = names.clone();
        distinct.sort();
        distinct.dedup();
        let seeds: Vec<u64> = distinct.iter().map(|n| stream_seed(root, n)).collect();
        // Same input → same output.
        for (n, &s) in distinct.iter().zip(&seeds) {
            prop_assert_eq!(stream_seed(root, n), s);
        }
        // Distinct names → distinct seeds (a 64-bit collision among a
        // couple dozen names would indicate a broken mix, not luck).
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), seeds.len(), "seed collision among {:?}", distinct);
        // A run's seed is independent of what else is in the campaign:
        // re-deriving from any subset gives the same value per name.
        if let Some(first) = distinct.first() {
            prop_assert_eq!(stream_seed(root, first), seeds[0]);
        }
    }

    /// Campaign accounting: every scheduled query is accounted for —
    /// processed rows plus skipped sessions equal the outcome total,
    /// and the outcome total equals what the design scheduled.
    #[test]
    fn campaign_tally_accounts_for_every_query(
        seed in 0u64..1_000,
        repeats in 1u64..3,
    ) {
        use emulator::dataset_a::{DatasetA, KeywordPolicy};
        use emulator::{Campaign, Design, Scenario};
        use simcore::time::SimDuration;

        let scenario = Scenario::with_size(seed, 6, 120);
        let n_clients = scenario.vantages.len();
        let mut c = Campaign::new(scenario);
        c.push(
            "tally",
            cdnsim::ServiceConfig::google_like(seed),
            Design::DatasetA(DatasetA {
                repeats,
                spacing: SimDuration::from_secs(6),
                keywords: KeywordPolicy::Fixed(0),
            }),
        );
        let report = c.execute_with_threads(2);
        let run = report.get("tally").unwrap();
        let t = run.tally;
        let scheduled = n_clients * repeats as usize;
        prop_assert_eq!(t.total(), scheduled, "tally {:?}", t);
        prop_assert_eq!(run.queries.len() + t.skipped, t.total(), "tally {:?}", t);
        prop_assert_eq!(t.ok + t.degraded + t.retried + t.timed_out + t.shed, t.total());
    }
}

// ---------- inference properties ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The model identity and threshold behaviour hold for any
    /// parameters.
    #[test]
    fn model_prediction_invariants(
        c in 0.0f64..100.0,
        k in 0.1f64..4.0,
        fetch in 1.0f64..1_000.0,
        rtt in 0.0f64..500.0,
    ) {
        let m = fecdn::prelude::ModelPrediction {
            c_ms: c,
            k_rounds: k,
            t_fetch_ms: fetch,
        };
        // Tdynamic = max of the two regimes.
        prop_assert!(m.t_dynamic_ms(rtt) >= m.t_static_ms(rtt) - 1e-9);
        prop_assert!(m.t_dynamic_ms(rtt) >= fetch - 1e-9);
        prop_assert!(m.identity_holds(rtt, 1e-6));
        // Beyond the threshold, Tdelta is zero.
        if let Some(thr) = m.rtt_threshold_ms() {
            prop_assert!(m.t_delta_ms(thr + 1.0) == 0.0);
            prop_assert!(m.t_delta_ms((thr - 1.0).max(0.0)) >= 0.0);
        }
    }

    /// Fetch bounds: lower ≤ upper always; intersection is contained in
    /// every input bracket.
    #[test]
    fn fetch_bounds_intersection_contained(
        brackets in prop::collection::vec((0.0f64..500.0, 0.0f64..500.0), 1..20),
    ) {
        let bs: Vec<fecdn::prelude::FetchBounds> = brackets
            .iter()
            .map(|&(a, b)| fecdn::prelude::FetchBounds {
                lower_ms: a.min(b),
                upper_ms: a.max(b),
            })
            .collect();
        if let Some(joint) = fecdn::prelude::FetchBounds::intersect_all(&bs) {
            prop_assert!(joint.lower_ms <= joint.upper_ms);
            for b in &bs {
                prop_assert!(joint.lower_ms >= b.lower_ms - 1e-9);
                prop_assert!(joint.upper_ms <= b.upper_ms + 1e-9);
            }
        }
    }
}
