//! Integration: the marker-blind classifiers (content analysis, PSH
//! heuristic) against the ground-truth markers — the reproduction's
//! analogue of the paper cross-validating content analysis with temporal
//! clustering.

use capture::{find_static_content_ids, Classifier, Timeline};
use cdnsim::ServiceWorld;
use fecdn::prelude::*;

/// Collects raw completions for distinct queries from a handful of
/// clients to one fixed FE.
fn raw_sessions(seed: u64) -> Vec<CompletedQuery> {
    let scenario = Scenario::with_size(seed, 16, 300);
    let cfg = ServiceConfig::google_like(seed);
    let mut sim = scenario.build_sim(cfg);
    sim.with(|w, net| {
        let fe = w.default_fe(0);
        let be = w.be_of_fe(fe);
        w.prewarm(net, fe, be, 4);
        for (i, client) in (0..12usize).enumerate() {
            w.schedule_query(
                net,
                SimDuration::from_millis(3_000 + i as u64 * 2_000),
                QuerySpec {
                    client,
                    keyword: (i + 1) as u64, // all distinct
                    fixed_fe: Some(fe),
                    instant_followup: false,
                },
            );
        }
    });
    let mut raw = Vec::new();
    let _ = run_collect_with(&mut sim, &Classifier::ByMarker, |cq| raw.push(cq.clone()));
    raw
}

#[test]
fn content_analysis_recovers_exactly_the_static_ids() {
    let raw = raw_sessions(11);
    assert!(raw.len() >= 10);
    let sessions: Vec<Vec<tcpsim::PktEvent>> = raw.iter().map(|cq| cq.trace.clone()).collect();
    let clients: Vec<tcpsim::NodeId> = raw
        .iter()
        .map(|cq| ServiceWorld::client_node(cq.client))
        .collect();
    let static_ids = find_static_content_ids(&sessions, |i| clients[i], 2);
    // Exactly one static content id for the service (the shared page
    // head), and it matches the plan.
    assert_eq!(static_ids.len(), 1, "ids {static_ids:?}");
    assert!(static_ids.contains(&raw[0].plan.static_content));
}

#[test]
fn content_classifier_matches_markers_on_every_session() {
    let raw = raw_sessions(12);
    let sessions: Vec<Vec<tcpsim::PktEvent>> = raw.iter().map(|cq| cq.trace.clone()).collect();
    let clients: Vec<tcpsim::NodeId> = raw
        .iter()
        .map(|cq| ServiceWorld::client_node(cq.client))
        .collect();
    let static_ids = find_static_content_ids(&sessions, |i| clients[i], 2);
    let by_content = Classifier::ByContent(static_ids);
    for (i, cq) in raw.iter().enumerate() {
        let node = clients[i];
        let a = Timeline::extract(&cq.trace, node, &Classifier::ByMarker).unwrap();
        let b = Timeline::extract(&cq.trace, node, &by_content).unwrap();
        assert_eq!(a.t3, b.t3, "session {i}: t3");
        assert_eq!(a.t4, b.t4, "session {i}: t4");
        assert_eq!(a.t5, b.t5, "session {i}: t5");
        assert_eq!(a.static_bytes, b.static_bytes, "session {i}: static bytes");
    }
}

#[test]
fn push_classifier_matches_markers_when_bursts_are_separated() {
    // At small RTT the static chunk ends with a PSH well before the
    // dynamic burst; the PSH heuristic then finds the same boundary.
    let raw = raw_sessions(13);
    let mut compared = 0;
    for cq in &raw {
        let node = ServiceWorld::client_node(cq.client);
        let by_marker = Timeline::extract(&cq.trace, node, &Classifier::ByMarker).unwrap();
        // Only meaningful when portions do not coalesce.
        if by_marker.t_delta_ms() < 5.0 {
            continue;
        }
        let by_push = Timeline::extract(&cq.trace, node, &Classifier::ByPush).unwrap();
        assert_eq!(by_marker.t4, by_push.t4);
        assert_eq!(by_marker.t5, by_push.t5);
        compared += 1;
    }
    // Many vantages sit beyond the threshold (merged bursts), so only a
    // minority of sessions qualify for this comparison.
    assert!(compared >= 3, "only {compared} separated sessions");
}

#[test]
fn static_bytes_are_stable_across_queries_and_clients() {
    // Footnote 2 / Sec. 3: the static portion is the same for every
    // query. The classifier-independent observable: static byte counts
    // agree across all sessions.
    let raw = raw_sessions(14);
    let mut sizes: Vec<u64> = raw
        .iter()
        .map(|cq| {
            let node = ServiceWorld::client_node(cq.client);
            Timeline::extract(&cq.trace, node, &Classifier::ByMarker)
                .unwrap()
                .static_bytes
        })
        .collect();
    sizes.dedup();
    assert_eq!(sizes.len(), 1, "static sizes varied: {sizes:?}");
    assert_eq!(sizes[0], raw[0].plan.static_bytes);
}
