//! Metrics-conformance suite for the telemetry layer.
//!
//! Pins the three contracts `simcore::telemetry` makes:
//!
//! 1. **Merge-order determinism** — the `metrics.tsv` document of a
//!    campaign is byte-identical at 1, 4 and 9 worker threads, because
//!    each run owns a private registry and campaigns merge them in
//!    descriptor order.
//! 2. **Observe-only equivalence** — telemetry never draws randomness
//!    or schedules events, so the committed golden query traces are
//!    byte-identical with metrics enabled, runtime-disabled, or
//!    compiled out entirely (`--features telemetry-off` runs this same
//!    suite to prove the third leg).
//! 3. **Accounting** — counters, gauges and histograms agree with a
//!    naive recomputation over the raw observation stream, and a
//!    sharded 3-way merge agrees with single-registry accumulation
//!    (property-tested).

mod common;

use cdnsim::ServiceConfig;
use common::{compare_golden, representative_campaign_with_metrics};
use emulator::dataset_a::{DatasetA, KeywordPolicy};
use emulator::dataset_b::DatasetB;
use emulator::{Campaign, Design, MetricsRegistry, Scenario, METRICS_TSV_HEADER};
use proptest::prelude::*;
use simcore::time::SimDuration;

/// Whether the telemetry record path is compiled out of this build.
const COMPILED_OUT: bool = cfg!(feature = "telemetry-off");

/// A campaign wide enough to exercise 9 genuinely concurrent workers
/// (worker counts are clamped to the run count): ten runs mixing both
/// service archetypes and both dataset designs, all with telemetry
/// force-enabled so the suite is independent of ambient `FECDN_METRICS`.
fn wide_campaign(seed: u64) -> Campaign {
    let mut c = Campaign::new(Scenario::with_size(seed, 12, 300));
    for i in 0..5u64 {
        let cfg = if i % 2 == 0 {
            ServiceConfig::bing_like(seed)
        } else {
            ServiceConfig::google_like(seed)
        };
        let keywords = if i % 2 == 0 {
            KeywordPolicy::Fixed(i)
        } else {
            KeywordPolicy::RoundRobin(i + 2)
        };
        c.push(
            format!("wide/a{i}"),
            cfg,
            Design::DatasetA(DatasetA {
                repeats: 1,
                spacing: SimDuration::from_secs(8),
                keywords,
            }),
        )
        .metrics = Some(true);
    }
    for i in 0..5usize {
        c.push(
            format!("wide/b{i}"),
            ServiceConfig::google_like(seed),
            Design::DatasetB(DatasetB::against(i).with_repeats(1)),
        )
        .metrics = Some(true);
    }
    c
}

/// Labels of [`wide_campaign`], in descriptor order.
fn wide_labels() -> Vec<String> {
    (0..5)
        .map(|i| format!("wide/a{i}"))
        .chain((0..5).map(|i| format!("wide/b{i}")))
        .collect()
}

// ---------- 1. merge-order determinism ----------

#[test]
fn metrics_tsv_is_byte_identical_at_1_4_9_threads() {
    let c = wide_campaign(42);
    let r1 = c.execute_with_threads(1);
    let r4 = c.execute_with_threads(4);
    let r9 = c.execute_with_threads(9);
    assert_eq!(r1.threads, 1);
    assert_eq!(r4.threads, 4);
    assert_eq!(r9.threads, 9);

    // The query TSV and the deterministic metrics document are both
    // byte-identical at every worker count.
    assert_eq!(r1.to_tsv(), r4.to_tsv(), "query TSV differs 1 vs 4");
    assert_eq!(r1.to_tsv(), r9.to_tsv(), "query TSV differs 1 vs 9");
    let (m1, m4, m9) = (r1.metrics_tsv(), r4.metrics_tsv(), r9.metrics_tsv());
    assert_eq!(m1, m4, "metrics.tsv differs 1 vs 4 threads");
    assert_eq!(m1, m9, "metrics.tsv differs 1 vs 9 threads");

    // So is the merged (cross-run) registry document and its JSON form.
    assert_eq!(r1.merged_metrics().to_tsv(), r9.merged_metrics().to_tsv());
    assert_eq!(r1.merged_metrics().to_json(), r9.merged_metrics().to_json());

    if COMPILED_OUT {
        // Compiled out: the document is the bare header even though the
        // runs requested telemetry.
        assert_eq!(m1, METRICS_TSV_HEADER);
    } else {
        // Instrumentation sanity: the layers actually reported in.
        assert!(m1.len() > METRICS_TSV_HEADER.len());
        for metric in [
            "capture.timeline_ok",
            "tcpsim.events_processed",
            "tcpsim.handshake_rtt_ms",
            "cdnsim.fe_static_cache_hits",
        ] {
            assert!(m1.contains(metric), "metrics.tsv missing {metric}:\n{m1}");
        }
        // Rows appear grouped by run, in descriptor order.
        let runs_in_doc: Vec<&str> = {
            let mut seen = Vec::new();
            for line in m1.lines().skip(1) {
                let run = line.split('\t').next().unwrap();
                if seen.last() != Some(&run) {
                    seen.push(run);
                }
            }
            seen
        };
        let want: Vec<String> = wide_labels();
        assert_eq!(runs_in_doc, want, "metrics rows not in descriptor order");
    }
}

// ---------- 2. observe-only equivalence ----------

/// The committed golden traces (pinned by tests/determinism.rs under the
/// ambient telemetry default) must be byte-identical when telemetry is
/// force-enabled and when it is runtime-disabled. Running this suite
/// with `--features telemetry-off` proves the compiled-out leg with the
/// same goldens.
fn golden_is_telemetry_invariant(seed: u64, name: &str) {
    for (metrics, context) in [
        (Some(true), "telemetry force-enabled"),
        (Some(false), "telemetry runtime-disabled"),
    ] {
        let got = representative_campaign_with_metrics(seed, metrics)
            .execute_with_threads(4)
            .to_tsv();
        compare_golden(&got, name, context);
    }
}

#[test]
fn golden_seed42_is_invariant_under_telemetry_toggle() {
    golden_is_telemetry_invariant(42, "campaign_seed42.tsv");
}

#[test]
fn golden_seed7_is_invariant_under_telemetry_toggle() {
    golden_is_telemetry_invariant(7, "campaign_seed7.tsv");
}

#[test]
fn disabled_runs_render_a_header_only_document() {
    let report = representative_campaign_with_metrics(42, Some(false)).execute_with_threads(2);
    assert_eq!(report.metrics_tsv(), METRICS_TSV_HEADER);
    assert_eq!(report.metrics_tsv_all(), METRICS_TSV_HEADER);
    for run in &report.runs {
        assert!(
            run.metrics.is_empty(),
            "run {} recorded metrics while disabled",
            run.label
        );
    }
}

#[test]
fn stderr_report_lists_runs_in_descriptor_order_at_4_threads() {
    // The stderr report is a single buffered string assembled after the
    // merge, so per-run lines appear in descriptor order no matter how
    // the 4 workers interleaved. Pin that: first occurrence of each
    // label must be strictly increasing, in both the stats table and
    // (when compiled in) the metrics document.
    let report = wide_campaign(7).execute_with_threads(4);
    let doc = report.stderr_report();
    let mut last = 0usize;
    for label in wide_labels() {
        let at = doc
            .find(&label)
            .unwrap_or_else(|| panic!("stderr report missing run {label}"));
        assert!(
            at >= last,
            "run {label} appears before its predecessor in the stderr report"
        );
        last = at;
    }
    if !COMPILED_OUT {
        let metrics_at = doc
            .find(METRICS_TSV_HEADER)
            .expect("stderr report missing the metrics document header");
        let tail = &doc[metrics_at..];
        let mut last = 0usize;
        for label in wide_labels() {
            let key = format!("\n{label}\t");
            let at = tail
                .find(&key)
                .unwrap_or_else(|| panic!("metrics section missing rows for {label}"));
            assert!(
                at >= last,
                "metrics rows for {label} out of descriptor order"
            );
            last = at;
        }
    }
}

// ---------- 3. accounting vs naive recomputation ----------

const COUNTERS: [&str; 3] = ["t.count.a", "t.count.b", "t.count.c"];
const GAUGES: [&str; 3] = ["t.gauge.a", "t.gauge.b", "t.gauge.c"];
const HISTS: [&str; 3] = ["t.hist.a", "t.hist.b", "t.hist.c"];

/// One registry operation, decoded from a flat sampled tuple:
/// `sel` picks the operation class, `which` the metric name, and
/// `n`/`x` supply the operand.
#[derive(Clone, Copy, Debug)]
struct Op {
    sel: u64,
    which: usize,
    n: u64,
    x: f64,
}

fn apply(reg: &mut MetricsRegistry, op: &Op) {
    match op.sel {
        0 => reg.inc(COUNTERS[op.which]),
        1 => reg.add(COUNTERS[op.which], op.n),
        2 => reg.set_gauge(GAUGES[op.which], op.x),
        _ => reg.observe(HISTS[op.which], op.x),
    }
}

fn decode(raw: &[(u64, u64, u64, f64)]) -> Vec<Op> {
    raw.iter()
        .map(|&(sel, which, n, x)| Op {
            sel,
            which: which as usize,
            n,
            x,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Registry accounting agrees with a naive recomputation over the
    /// same observation stream: counters are plain sums, gauges are
    /// (last write, running max), histograms see every sample exactly
    /// once with exact min/max and a mean within float-merge tolerance.
    #[test]
    fn accounting_matches_naive_recomputation(
        raw in prop::collection::vec((0u64..4, 0u64..3, 0u64..100, 0.0f64..1.0e6), 0..200),
    ) {
        if COMPILED_OUT {
            return Ok(()); // record path is a no-op by construction
        }
        let ops = decode(&raw);
        let mut reg = MetricsRegistry::with_enabled(true);
        let mut counters = [0u64; 3];
        let mut gauges: [Option<(f64, f64)>; 3] = [None; 3];
        let mut hists: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for op in &ops {
            apply(&mut reg, op);
            match op.sel {
                0 => counters[op.which] += 1,
                1 => counters[op.which] += op.n,
                2 => {
                    let max = gauges[op.which].map_or(op.x, |(_, m)| m.max(op.x));
                    gauges[op.which] = Some((op.x, max));
                }
                _ => hists[op.which].push(op.x),
            }
        }
        for i in 0..3 {
            prop_assert_eq!(
                reg.counter(COUNTERS[i]),
                if counters[i] > 0 || ops.iter().any(|o| o.sel <= 1 && o.which == i) {
                    Some(counters[i])
                } else {
                    None
                }
            );
            match gauges[i] {
                None => prop_assert!(reg.gauge(GAUGES[i]).is_none()),
                Some((last, max)) => {
                    let (gl, gm) = reg.gauge(GAUGES[i]).unwrap();
                    prop_assert_eq!(gl.to_bits(), last.to_bits());
                    prop_assert_eq!(gm.to_bits(), max.to_bits());
                }
            }
            if hists[i].is_empty() {
                prop_assert!(reg.hist_count(HISTS[i]).is_none());
            } else {
                prop_assert_eq!(reg.hist_count(HISTS[i]), Some(hists[i].len() as u64));
                let s = reg.hist_summary(HISTS[i]).unwrap();
                let naive_min = hists[i].iter().cloned().fold(f64::INFINITY, f64::min);
                let naive_max = hists[i].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let naive_mean = hists[i].iter().sum::<f64>() / hists[i].len() as f64;
                prop_assert_eq!(s.min.to_bits(), naive_min.to_bits());
                prop_assert_eq!(s.max.to_bits(), naive_max.to_bits());
                prop_assert!(
                    (s.mean - naive_mean).abs() <= 1e-9 * naive_mean.abs().max(1.0),
                    "mean {} vs naive {}", s.mean, naive_mean
                );
            }
        }
    }

    /// Sharded accumulation merged in shard order is equivalent to a
    /// single registry fed the whole stream: exact for counters, gauge
    /// last/max and histogram counts/extrema, tolerance-equal for
    /// merged moments (Welford merge is not bitwise associative).
    #[test]
    fn three_way_shard_merge_matches_single_registry(
        raw in prop::collection::vec((0u64..4, 0u64..3, 0u64..100, 0.0f64..1.0e6), 0..200),
        cut_a in 0u64..201,
        cut_b in 0u64..201,
    ) {
        if COMPILED_OUT {
            return Ok(());
        }
        let ops = decode(&raw);
        let (mut i, mut j) = (
            (cut_a as usize).min(ops.len()),
            (cut_b as usize).min(ops.len()),
        );
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }

        let mut single = MetricsRegistry::with_enabled(true);
        for op in &ops {
            apply(&mut single, op);
        }

        let mut merged = MetricsRegistry::with_enabled(true);
        for shard_ops in [&ops[..i], &ops[i..j], &ops[j..]] {
            let mut shard = MetricsRegistry::with_enabled(true);
            for op in shard_ops {
                apply(&mut shard, op);
            }
            merged.merge(&shard);
        }

        prop_assert_eq!(single.names(), merged.names());
        for name in COUNTERS {
            prop_assert_eq!(single.counter(name), merged.counter(name));
        }
        for name in GAUGES {
            let (a, b) = (single.gauge(name), merged.gauge(name));
            prop_assert_eq!(a.is_some(), b.is_some());
            if let (Some((al, am)), Some((bl, bm))) = (a, b) {
                prop_assert_eq!(al.to_bits(), bl.to_bits(), "gauge {} last", name);
                prop_assert_eq!(am.to_bits(), bm.to_bits(), "gauge {} max", name);
            }
        }
        for name in HISTS {
            prop_assert_eq!(single.hist_count(name), merged.hist_count(name));
            let (a, b) = (single.hist_summary(name), merged.hist_summary(name));
            prop_assert_eq!(a.is_some(), b.is_some());
            if let (Some(sa), Some(sb)) = (a, b) {
                prop_assert_eq!(sa.n, sb.n);
                prop_assert_eq!(sa.min.to_bits(), sb.min.to_bits(), "hist {} min", name);
                prop_assert_eq!(sa.max.to_bits(), sb.max.to_bits(), "hist {} max", name);
                // Under HIST_CAP the quantile sample is exact, and
                // sorting erases shard order: quantiles are bitwise.
                for (qa, qb) in [(sa.median, sb.median), (sa.p95, sb.p95)] {
                    prop_assert_eq!(qa.to_bits(), qb.to_bits(), "hist {} quantile", name);
                }
                prop_assert!(
                    (sa.mean - sb.mean).abs() <= 1e-9 * sa.mean.abs().max(1.0),
                    "hist {} mean {} vs {}", name, sa.mean, sb.mean
                );
            }
        }
    }
}
