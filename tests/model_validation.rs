//! Integration: the paper's abstract model (Sec. 2) against the full
//! simulation — the reproduction's analogue of "the correctness of the
//! model is validated in later sections".

use capture::Classifier;
use emulator::dataset_b::DatasetB;
use fecdn::prelude::*;

/// One shared Dataset B run against a fixed Google-like FE.
fn dataset_b(seed: u64) -> Vec<ProcessedQuery> {
    let scenario = Scenario::with_size(seed, 40, 300);
    let cfg = ServiceConfig::google_like(seed);
    let mut sim = scenario.build_sim(cfg.clone());
    let fe = sim.with(|w, _| w.default_fe(0));
    drop(sim);
    DatasetB::against(fe)
        .with_repeats(6)
        .run(&scenario, cfg, &Classifier::ByMarker)
}

#[test]
fn every_timeline_is_internally_consistent() {
    let out = dataset_b(1);
    assert!(out.len() > 200);
    for q in &out {
        assert!(
            q.params.is_consistent(0.5),
            "inconsistent params: {:?}",
            q.params
        );
        assert!(q.params.t_static_ms >= 0.0);
        assert!(q.params.t_dynamic_ms >= 0.0);
        assert!(q.params.overall_ms >= q.params.t_dynamic_ms);
    }
}

#[test]
fn fetch_bracket_contains_ground_truth_for_every_query() {
    let out = dataset_b(2);
    let mut checked = 0;
    for q in &out {
        if let Some(truth) = q.true_fetch_ms {
            let b = FetchBounds::from_params(&q.params);
            assert!(
                b.contains(truth, 15.0),
                "bracket [{:.1}, {:.1}] missed truth {:.1} (rtt {:.1})",
                b.lower_ms,
                b.upper_ms,
                truth,
                q.params.rtt_ms
            );
            checked += 1;
        }
    }
    assert!(checked > 200, "only {checked} queries had ground truth");
}

#[test]
fn tstatic_tracks_rtt_with_unit_slope() {
    // The static burst needs exactly one extra ACK-clocked round beyond
    // the initial window, so Tstatic ≈ c + 1·RTT across vantages.
    let out = dataset_b(3);
    let samples: Vec<(u64, QueryParams)> =
        out.iter().map(|q| (q.client as u64, q.params)).collect();
    let groups = per_group_medians(&samples);
    let xs: Vec<f64> = groups.iter().map(|g| g.rtt_ms).collect();
    let ys: Vec<f64> = groups.iter().map(|g| g.t_static_ms).collect();
    let fit = stats::ols(&xs, &ys).unwrap();
    assert!(
        (fit.slope - 1.0).abs() < 0.15,
        "Tstatic slope {} should be ≈ 1",
        fit.slope
    );
    assert!(
        fit.r2 > 0.95,
        "Tstatic should hug its RTT trend, R² {}",
        fit.r2
    );
    assert!(fit.intercept > 0.0, "positive FE-side constant");
}

#[test]
fn tdynamic_is_max_of_fetch_and_pacing() {
    let out = dataset_b(4);
    let samples: Vec<(u64, QueryParams)> =
        out.iter().map(|q| (q.client as u64, q.params)).collect();
    let groups = per_group_medians(&samples);
    // Fit the model from the data.
    let small: Vec<&inference::GroupMedians> = groups.iter().filter(|g| g.rtt_ms < 30.0).collect();
    assert!(small.len() >= 3);
    let tfetch =
        stats::quantile::median(&small.iter().map(|g| g.t_dynamic_ms).collect::<Vec<_>>()).unwrap();
    let c = stats::quantile::median(
        &small
            .iter()
            .map(|g| g.t_static_ms - g.rtt_ms)
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let model = ModelPrediction {
        c_ms: c,
        k_rounds: 1.0,
        t_fetch_ms: tfetch,
    };
    // Every vantage's Tdynamic must match the model within tolerance
    // (fetch jitter + load wander).
    let mut err_sum = 0.0;
    for g in &groups {
        let predicted = model.t_dynamic_ms(g.rtt_ms);
        let err = (g.t_dynamic_ms - predicted).abs();
        err_sum += err;
        assert!(
            err < 0.35 * predicted + 25.0,
            "vantage {} rtt {:.1}: measured {:.1} vs predicted {:.1}",
            g.group,
            g.rtt_ms,
            g.t_dynamic_ms,
            predicted
        );
    }
    let mean_err = err_sum / groups.len() as f64;
    assert!(mean_err < 20.0, "mean model error {mean_err:.1} ms");
}

#[test]
fn threshold_estimators_agree_with_the_model() {
    let out = dataset_b(5);
    let samples: Vec<(u64, QueryParams)> =
        out.iter().map(|q| (q.client as u64, q.params)).collect();
    let groups = per_group_medians(&samples);
    let points: Vec<(f64, f64)> = groups.iter().map(|g| (g.rtt_ms, g.t_delta_ms)).collect();
    let est = inference::estimate_rtt_threshold(&points, 5.0, 25.0);
    let lin = est.linear_intercept_ms.expect("linear threshold");
    let bin = est.binned_first_zero_ms.expect("binned threshold");
    // The two independent estimators must roughly agree (the binned one
    // is quantised to its 25 ms bins and reads high on sparse data)...
    assert!(
        (lin - bin).abs() < 80.0,
        "estimators disagree: linear {lin:.0} vs binned {bin:.0}"
    );
    // ...and sit in the Google band of Fig. 5 (50–100 ms, widened for
    // simulator calibration and estimator quantisation).
    assert!((30.0..=140.0).contains(&lin), "threshold {lin:.0}");
    // Slope of the falling regime ≈ −1 (one extra window round).
    let slope = est.linear_slope.unwrap();
    assert!((-1.3..=-0.7).contains(&slope), "slope {slope}");
}

#[test]
fn fixed_fe_fetch_time_is_roughly_constant() {
    // The model's standing assumption: "fixing a FE server, Tfetch
    // should be a constant". Verify on ground truth: the coefficient of
    // variation of true fetch times against one FE is modest.
    let out = dataset_b(6);
    let fetches: Vec<f64> = out.iter().filter_map(|q| q.true_fetch_ms).collect();
    let s = stats::quantile::Summary::of(&fetches).unwrap();
    let cv = s.cv().unwrap();
    assert!(
        cv < 0.30,
        "google-like fetch time should be stable, cv {cv:.2}"
    );
}
